//! Least-recently-used cache over an intrusive doubly-linked list.
//!
//! This is the workhorse of the workspace: the paper's client caches, the
//! intervening filter caches and the residency structure of the
//! aggregating cache are all LRU. The implementation keeps nodes in a slab
//! (`Vec`) with index links, giving O(1) access, insertion at either end
//! and eviction without any unsafe code.

use fgcache_types::hash::FastMap;
use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::{Cache, CacheStats};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    file: FileId,
    prev: usize,
    next: usize,
    speculative: bool,
}

/// An LRU cache of [`FileId`]s.
///
/// Demand accesses promote to the MRU head; speculative inserts go to the
/// LRU tail ("appended to the end" — paper §3), so unconfirmed group
/// members never displace confirmed working-set entries' priority.
///
/// ```
/// use fgcache_cache::{Cache, LruCache};
/// use fgcache_types::FileId;
///
/// let mut c = LruCache::new(3);
/// c.access(FileId(1));
/// c.access(FileId(2));
/// c.insert_speculative(FileId(3));
/// // The speculative entry is the first to go.
/// c.access(FileId(4));
/// assert!(!c.contains(FileId(3)));
/// assert!(c.contains(FileId(1)) && c.contains(FileId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    map: FastMap<FileId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
    // Reused by insert_speculative_batch so steady-state batch inserts
    // allocate nothing (batches are group-sized: single digits).
    batch_scratch: Vec<FileId>,
    // When enabled, every eviction is appended here until drained.
    log_evictions: bool,
    eviction_log: Vec<FileId>,
}

impl LruCache {
    /// Creates an LRU cache holding at most `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        LruCache {
            capacity,
            map: FastMap::with_capacity_and_hasher(capacity.min(1 << 20), Default::default()),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::new(),
            batch_scratch: Vec::new(),
            log_evictions: false,
            eviction_log: Vec::new(),
        }
    }

    /// Enables or disables the eviction log. While enabled, every evicted
    /// file is appended to an internal buffer until
    /// [`drain_eviction_log`](Self::drain_eviction_log) consumes it.
    /// Disabling also clears any pending entries. Used by the sharded
    /// cache's atomic residency index to mirror membership changes.
    pub fn set_eviction_log(&mut self, enabled: bool) {
        self.log_evictions = enabled;
        if !enabled {
            self.eviction_log.clear();
        }
    }

    /// Invokes `f` for every eviction logged since the last drain, oldest
    /// first, then clears the log. The log buffer is reused, so draining
    /// allocates nothing.
    pub fn drain_eviction_log(&mut self, mut f: impl FnMut(FileId)) {
        for &file in &self.eviction_log {
            f(file);
        }
        self.eviction_log.clear();
    }

    /// Records a hit in the statistics **without** touching residency or
    /// recency — the entry is counted as accessed but nothing moves.
    ///
    /// This backs the sharded cache's fast-path reconciliation: a reader
    /// confirmed residency without the lock, but by the time the pending
    /// touch is applied under the lock the file has been evicted by a
    /// concurrent miss. The access was a hit when it happened, so the
    /// stats record it as one; re-inserting the file here would invent
    /// residency the reference model never saw.
    pub fn record_detached_hit(&mut self) {
        self.stats.record_hit(false);
    }

    /// Returns the resident files from most- to least-recently used.
    pub fn iter_mru(&self) -> IterMru<'_> {
        IterMru {
            cache: self,
            cursor: self.head,
        }
    }

    /// The file currently at the MRU head, if any.
    pub fn mru(&self) -> Option<FileId> {
        (self.head != NIL).then(|| self.nodes[self.head].file)
    }

    /// The file currently at the LRU tail (the next eviction victim), if
    /// any.
    pub fn lru(&self) -> Option<FileId> {
        (self.tail != NIL).then(|| self.nodes[self.tail].file)
    }

    fn alloc(&mut self, file: FileId, speculative: bool) -> usize {
        let node = Node {
            file,
            prev: NIL,
            next: NIL,
            speculative,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_head(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn push_tail(&mut self, idx: usize) {
        self.nodes[idx].next = NIL;
        self.nodes[idx].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }

    /// Moves `file` to the MRU head **without** recording an access or
    /// clearing its speculative flag. Returns whether the file was
    /// resident.
    ///
    /// Used by the aggregating cache's head-insertion ablation, where
    /// speculative group members are placed directly below the requested
    /// file instead of at the tail.
    pub fn promote_to_head(&mut self, file: FileId) -> bool {
        match self.map.get(&file).copied() {
            Some(idx) => {
                self.detach(idx);
                self.push_head(idx);
                true
            }
            None => false,
        }
    }

    /// Evicts the LRU tail entry (recording the eviction in statistics
    /// and, when enabled, the eviction log), returning its file.
    ///
    /// This is the hook a size-aware wrapper uses to reclaim capacity in
    /// *units* rather than files: it pre-evicts tail entries until the
    /// incoming footprint fits, so this cache's own count-based eviction
    /// never fires and both layers agree on the victim sequence.
    pub fn evict_lru(&mut self) -> Option<FileId> {
        self.evict_tail()
    }

    /// Evicts `file` regardless of its recency position, recording the
    /// eviction exactly as a tail eviction would. Returns whether the
    /// file was resident.
    ///
    /// Backs whole-group (bundle) eviction, where reclaiming the LRU
    /// victim also reclaims its still-resident co-fetched group members,
    /// wherever they sit in the recency order.
    pub fn evict_file(&mut self, file: FileId) -> bool {
        match self.map.remove(&file) {
            Some(idx) => {
                self.detach(idx);
                self.free.push(idx);
                self.stats.record_eviction();
                if self.log_evictions {
                    self.eviction_log.push(file);
                }
                true
            }
            None => false,
        }
    }

    /// Records a miss in the statistics **without** admitting the file —
    /// the demand was served but nothing entered the cache.
    ///
    /// Used by size-aware wrappers for files larger than the entire
    /// cache: the fetch happens (and is charged), but admission is
    /// impossible. The count-based model has no such case, so plain LRU
    /// never calls this.
    pub fn record_bypass_miss(&mut self) {
        self.stats.record_miss();
    }

    /// Evicts the LRU tail entry, returning its file.
    fn evict_tail(&mut self) -> Option<FileId> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let file = self.nodes[idx].file;
        self.detach(idx);
        self.map.remove(&file);
        self.free.push(idx);
        self.stats.record_eviction();
        if self.log_evictions {
            self.eviction_log.push(file);
        }
        Some(file)
    }
}

impl Cache for LruCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        if let Some(&idx) = self.map.get(&file) {
            let was_speculative = std::mem::replace(&mut self.nodes[idx].speculative, false);
            self.detach(idx);
            self.push_head(idx);
            self.stats.record_hit(was_speculative);
            AccessOutcome::Hit
        } else {
            self.stats.record_miss();
            if self.map.len() == self.capacity {
                self.evict_tail();
            }
            let idx = self.alloc(file, false);
            self.push_head(idx);
            self.map.insert(file, idx);
            AccessOutcome::Miss
        }
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.map.contains_key(&file) {
            return false;
        }
        if self.map.len() == self.capacity {
            self.evict_tail();
        }
        let idx = self.alloc(file, true);
        self.push_tail(idx);
        self.map.insert(file, idx);
        self.stats.record_speculative_insert();
        true
    }

    /// Appends the batch at the LRU tail in `files` order (first member of
    /// the batch is evicted last among the batch), making room for the
    /// whole batch **before** inserting so batch members never evict each
    /// other.
    fn insert_speculative_batch(&mut self, files: &[FileId]) {
        // Dedup by linear scan into a reused scratch buffer: batches are
        // group-sized (single digits), where a scan beats a hash set and
        // a reused Vec means zero steady-state allocation.
        let mut fresh = std::mem::take(&mut self.batch_scratch);
        fresh.clear();
        for &file in files {
            if fresh.len() == self.capacity {
                break;
            }
            if !self.map.contains_key(&file) && !fresh.contains(&file) {
                fresh.push(file);
            }
        }
        let needed = (self.map.len() + fresh.len()).saturating_sub(self.capacity);
        for _ in 0..needed {
            self.evict_tail();
        }
        for &file in &fresh {
            let idx = self.alloc(file, true);
            self.push_tail(idx);
            self.map.insert(file, idx);
            self.stats.record_speculative_insert();
        }
        self.batch_scratch = fresh;
    }

    fn contains(&self, file: FileId) -> bool {
        self.map.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "lru"
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.stats = CacheStats::new();
        self.eviction_log.clear();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("LruCache", detail));
        if self.map.len() > self.capacity {
            return err(format!(
                "len {} exceeds capacity {}",
                self.map.len(),
                self.capacity
            ));
        }
        if self.map.len() + self.free.len() != self.nodes.len() {
            return err(format!(
                "slab accounting: {} mapped + {} free != {} slots",
                self.map.len(),
                self.free.len(),
                self.nodes.len()
            ));
        }
        // Walk head→tail checking link symmetry and map agreement.
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut cursor = self.head;
        while cursor != NIL {
            if cursor >= self.nodes.len() {
                return err(format!("link points to out-of-slab index {cursor}"));
            }
            let node = &self.nodes[cursor];
            if node.prev != prev {
                return err(format!(
                    "broken back-link at slot {cursor} ({} != expected {})",
                    node.prev, prev
                ));
            }
            if self.map.get(&node.file) != Some(&cursor) {
                return err(format!("map disagrees with chain for {}", node.file));
            }
            seen += 1;
            if seen > self.map.len() {
                return err("chain longer than map (cycle or stray node)".to_string());
            }
            prev = cursor;
            cursor = node.next;
        }
        if seen != self.map.len() {
            return err(format!(
                "chain has {seen} nodes, map has {}",
                self.map.len()
            ));
        }
        if prev != self.tail {
            return err(format!("tail is {}, walk ended at {prev}", self.tail));
        }
        for &idx in &self.free {
            if idx >= self.nodes.len() {
                return err(format!("free list holds out-of-slab index {idx}"));
            }
            if self.map.get(&self.nodes[idx].file) == Some(&idx) {
                return err(format!("slot {idx} is both free and mapped"));
            }
        }
        self.stats.check("LruCache")
    }
}

/// Iterator over resident files from MRU to LRU, produced by
/// [`LruCache::iter_mru`].
#[derive(Debug)]
pub struct IterMru<'a> {
    cache: &'a LruCache,
    cursor: usize,
}

impl Iterator for IterMru<'_> {
    type Item = FileId;

    fn next(&mut self) -> Option<FileId> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.cache.nodes[self.cursor];
        self.cursor = node.next;
        Some(node.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;

    fn files(c: &LruCache) -> Vec<u64> {
        c.iter_mru().map(|f| f.as_u64()).collect()
    }

    #[test]
    fn conformance() {
        check_cache_conformance(LruCache::new);
    }

    #[test]
    fn corrupted_index_is_detected() {
        let mut c = LruCache::new(3);
        c.access(FileId(1));
        c.access(FileId(2));
        assert!(c.check_invariants().is_ok());
        // Point the index at the wrong slab slot.
        let idx = c.map[&FileId(1)];
        c.map.insert(FileId(1), (idx + 1) % c.nodes.len());
        assert!(c.check_invariants().is_err());
    }

    #[test]
    fn corrupted_stats_are_detected() {
        let mut c = LruCache::new(3);
        c.access(FileId(1));
        assert!(c.check_invariants().is_ok());
        c.stats.hits += 1;
        assert!(c.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0);
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut c = LruCache::new(3);
        c.access(FileId(1));
        c.access(FileId(2));
        c.access(FileId(3));
        c.access(FileId(1)); // refresh 1; LRU is now 2
        c.access(FileId(4)); // evicts 2
        assert!(!c.contains(FileId(2)));
        assert_eq!(files(&c), vec![4, 1, 3]);
    }

    #[test]
    fn mru_and_lru_accessors() {
        let mut c = LruCache::new(3);
        assert_eq!(c.mru(), None);
        assert_eq!(c.lru(), None);
        c.access(FileId(1));
        c.access(FileId(2));
        assert_eq!(c.mru(), Some(FileId(2)));
        assert_eq!(c.lru(), Some(FileId(1)));
    }

    #[test]
    fn speculative_goes_to_tail() {
        let mut c = LruCache::new(3);
        c.access(FileId(1));
        c.insert_speculative(FileId(9));
        assert_eq!(c.lru(), Some(FileId(9)));
        assert_eq!(c.mru(), Some(FileId(1)));
    }

    #[test]
    fn speculative_hit_promotes_to_head() {
        let mut c = LruCache::new(3);
        c.access(FileId(1));
        c.insert_speculative(FileId(9));
        assert!(c.access(FileId(9)).is_hit());
        assert_eq!(c.mru(), Some(FileId(9)));
        assert_eq!(c.stats().speculative_hits, 1);
    }

    #[test]
    fn batch_members_do_not_evict_each_other() {
        let mut c = LruCache::new(4);
        c.access(FileId(1));
        c.access(FileId(2));
        c.access(FileId(3));
        c.access(FileId(4));
        // Batch of 3 into a full cache of 4: evicts the 3 LRU entries
        // (1, 2, 3), keeps the whole batch.
        c.insert_speculative_batch(&[FileId(10), FileId(11), FileId(12)]);
        assert_eq!(c.len(), 4);
        assert!(c.contains(FileId(4)));
        assert!(c.contains(FileId(10)));
        assert!(c.contains(FileId(11)));
        assert!(c.contains(FileId(12)));
    }

    #[test]
    fn batch_order_determines_eviction_order() {
        let mut c = LruCache::new(3);
        c.insert_speculative_batch(&[FileId(1), FileId(2), FileId(3)]);
        // Tail is the last batch member.
        assert_eq!(c.lru(), Some(FileId(3)));
        c.access(FileId(4)); // evicts 3
        assert!(!c.contains(FileId(3)));
        assert!(c.contains(FileId(1)));
    }

    #[test]
    fn batch_skips_resident_and_duplicates() {
        let mut c = LruCache::new(5);
        c.access(FileId(1));
        c.insert_speculative_batch(&[FileId(1), FileId(2), FileId(2), FileId(3)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().speculative_inserts, 2);
    }

    #[test]
    fn batch_larger_than_capacity_keeps_prefix() {
        let mut c = LruCache::new(2);
        c.insert_speculative_batch(&[FileId(1), FileId(2), FileId(3), FileId(4)]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(FileId(1)));
        assert!(c.contains(FileId(2)));
    }

    #[test]
    fn capacity_one_behaves() {
        let mut c = LruCache::new(1);
        c.access(FileId(1));
        c.access(FileId(2));
        assert!(!c.contains(FileId(1)));
        assert!(c.contains(FileId(2)));
        assert_eq!(c.len(), 1);
        assert!(c.access(FileId(2)).is_hit());
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let mut c = LruCache::new(2);
        for i in 0..100 {
            c.access(FileId(i));
        }
        // Slab should not grow beyond capacity + O(1).
        assert!(c.nodes.len() <= 3, "slab grew to {}", c.nodes.len());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_log_records_every_eviction_in_order() {
        let mut c = LruCache::new(2);
        c.set_eviction_log(true);
        c.access(FileId(1));
        c.access(FileId(2));
        c.access(FileId(3)); // evicts 1
        c.insert_speculative_batch(&[FileId(4), FileId(5)]); // evicts 2, 3
        let mut log = Vec::new();
        c.drain_eviction_log(|f| log.push(f.as_u64()));
        assert_eq!(log, vec![1, 2, 3]);
        // Drained: a second drain sees nothing.
        c.drain_eviction_log(|_| panic!("log should be empty"));
        // Disabling clears pending entries.
        c.access(FileId(6));
        c.set_eviction_log(false);
        c.access(FileId(7));
        c.set_eviction_log(true);
        c.drain_eviction_log(|_| panic!("disabled interval must not log"));
    }

    #[test]
    fn detached_hit_counts_without_moving_anything() {
        let mut c = LruCache::new(2);
        c.access(FileId(1));
        c.access(FileId(2));
        let before = files(&c);
        c.record_detached_hit();
        assert_eq!(files(&c), before);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().accesses, 3);
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn iter_mru_full_order() {
        let mut c = LruCache::new(4);
        for i in [1, 2, 3] {
            c.access(FileId(i));
        }
        c.access(FileId(2));
        assert_eq!(files(&c), vec![2, 3, 1]);
    }
}

//! A simple I/O cost model for group fetching.
//!
//! The paper's motivation for grouping is latency: every remote fetch
//! pays a per-request round trip, so fetching `g` related files in one
//! request amortises it — at the price of transferring speculative files
//! that may never be used. This module quantifies that trade:
//!
//! ```text
//! total_time = demand_fetches × request_latency
//!            + files_transferred × transfer_time
//! ```
//!
//! which is the standard first-order model for fixed-size whole-file
//! transfers over a network with per-request overhead. With
//! `request_latency ≫ transfer_time` (the distributed-file-system regime
//! the paper targets), grouping wins decisively; as transfer cost grows,
//! large groups stop paying.

use fgcache_core::AggregatingCacheBuilder;
use fgcache_net::{GroupRequest, SimTransport, Transport as _};
use fgcache_trace::Trace;
use fgcache_types::{FileId, ValidationError};

use crate::report::{fmt2, Table};

pub use fgcache_core::cost::CostModel;

/// Measured I/O cost of one aggregating-cache run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Group size `g` (1 = plain LRU).
    pub group_size: usize,
    /// Demand fetches (requests issued).
    pub demand_fetches: u64,
    /// Files transferred (requested + speculative).
    pub files_transferred: u64,
    /// Total time under the cost model.
    pub total_time: f64,
}

impl CostPoint {
    /// Prices a run from its raw counters. Every cost path — the analytic
    /// sweep and the transport-backed sweep — builds its points through
    /// this one constructor, so the analytic and measured rows of
    /// [`cost_table`] cannot silently diverge in how they price counters.
    pub fn from_counters(group_size: usize, fetches: u64, files: u64, model: &CostModel) -> Self {
        CostPoint {
            group_size,
            demand_fetches: fetches,
            files_transferred: files,
            total_time: model.total(fetches, files),
        }
    }
}

/// Replays `trace` through aggregating caches of each group size and
/// prices the runs under `model`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if the model is invalid, `group_sizes`
/// is empty, or a group size exceeds `capacity`.
pub fn cost_sweep(
    trace: &Trace,
    capacity: usize,
    group_sizes: &[usize],
    model: CostModel,
) -> Result<Vec<CostPoint>, ValidationError> {
    model.validate()?;
    if group_sizes.is_empty() {
        return Err(ValidationError::new("group_sizes", "must not be empty"));
    }
    let mut points = Vec::with_capacity(group_sizes.len());
    for &g in group_sizes {
        let mut cache = AggregatingCacheBuilder::new(capacity)
            .group_size(g)
            .build()?;
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        let stats = cache.group_stats();
        points.push(CostPoint::from_counters(
            g,
            stats.demand_fetches,
            stats.files_transferred,
            &model,
        ));
    }
    Ok(points)
}

/// Replays `trace` through aggregating caches of each group size with
/// every demand miss routed through a [`SimTransport`] fetching from the
/// origin, and prices the runs **from the transport's own counters** —
/// the layer that actually moved the files. When the transport is active
/// it is the one source of truth: this function errors (rather than
/// silently diverging) if the cache's analytic counters and the
/// transport's measured counters ever disagree.
///
/// With zero jitter the returned points are identical to [`cost_sweep`]'s
/// — pinned by a test — because both derive from the same fetch stream
/// and price through [`CostPoint::from_counters`].
///
/// # Errors
///
/// Returns a [`ValidationError`] for invalid inputs (see [`cost_sweep`])
/// or for a counter divergence between the cache and the transport.
pub fn cost_sweep_via_transport(
    trace: &Trace,
    capacity: usize,
    group_sizes: &[usize],
    model: CostModel,
) -> Result<Vec<CostPoint>, ValidationError> {
    model.validate()?;
    if group_sizes.is_empty() {
        return Err(ValidationError::new("group_sizes", "must not be empty"));
    }
    let mut points = Vec::with_capacity(group_sizes.len());
    for &g in group_sizes {
        let mut cache = AggregatingCacheBuilder::new(capacity)
            .group_size(g)
            .build()?;
        let mut transport = SimTransport::to_origin(model);
        let mut next_request_id = 0u64;
        for ev in trace.events() {
            let (_, fetch) = cache.handle_access_with_fetch(ev.file);
            // Copy out of the cache's scratch buffer: the wire request
            // owns its file list (and this is the priced path, not the
            // steady-state simulation loop).
            let fetch = fetch.map(<[FileId]>::to_vec);
            if let Some(files) = fetch {
                let request = GroupRequest::new(next_request_id, files);
                next_request_id += 1;
                transport
                    .fetch_group(&request)
                    .map_err(|e| ValidationError::new("transport", e.to_string()))?;
            }
        }
        let measured = transport.stats();
        let analytic = cache.group_stats();
        if measured.requests != analytic.demand_fetches
            || measured.files_moved != analytic.files_transferred
        {
            return Err(ValidationError::new(
                "transport counters",
                format!(
                    "transport measured {} fetches / {} files but the cache recorded {} / {}",
                    measured.requests,
                    measured.files_moved,
                    analytic.demand_fetches,
                    analytic.files_transferred
                ),
            ));
        }
        points.push(CostPoint::from_counters(
            g,
            measured.requests,
            measured.files_moved,
            &model,
        ));
    }
    Ok(points)
}

/// Renders a cost sweep as a table, normalising times to the `g = 1` row
/// when present.
pub fn cost_table(title: &str, points: &[CostPoint]) -> Table {
    let baseline = points
        .iter()
        .find(|p| p.group_size == 1)
        .map(|p| p.total_time);
    let mut t = Table::new(
        title,
        ["group", "fetches", "files moved", "total time", "vs lru"],
    );
    for p in points {
        let rel = baseline
            .filter(|b| *b > 0.0)
            .map(|b| format!("{:+.1}%", (p.total_time / b - 1.0) * 100.0))
            .unwrap_or_default();
        t.push_row([
            if p.group_size == 1 {
                "lru".to_string()
            } else {
                format!("g{}", p.group_size)
            },
            p.demand_fetches.to_string(),
            p.files_transferred.to_string(),
            fmt2(p.total_time),
            rel,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_trace::synth::{SynthConfig, WorkloadProfile};

    fn trace() -> Trace {
        SynthConfig::profile(WorkloadProfile::Server)
            .events(20_000)
            .seed(8)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn model_is_reexported_from_core() {
        // The definition moved to `fgcache_core::cost`; the historical
        // `fgcache_sim::cost::CostModel` path must keep working.
        let m: fgcache_core::CostModel = CostModel::remote();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn from_counters_prices_through_the_model() {
        let m = CostModel {
            request_latency: 10.0,
            transfer_time: 2.0,
            transfer_per_unit: 0.0,
        };
        let p = CostPoint::from_counters(5, 3, 7, &m);
        assert_eq!(p.group_size, 5);
        assert_eq!(p.demand_fetches, 3);
        assert_eq!(p.files_transferred, 7);
        assert_eq!(p.total_time, 44.0);
    }

    #[test]
    fn sweep_validates_inputs() {
        let t = trace();
        assert!(cost_sweep(&t, 100, &[], CostModel::remote()).is_err());
        assert!(cost_sweep(&t, 4, &[9], CostModel::remote()).is_err());
        let bad = CostModel {
            request_latency: -1.0,
            transfer_time: 0.0,
            transfer_per_unit: 0.0,
        };
        assert!(cost_sweep(&t, 100, &[1], bad).is_err());
        assert!(cost_sweep_via_transport(&t, 100, &[], CostModel::remote()).is_err());
        assert!(cost_sweep_via_transport(&t, 4, &[9], CostModel::remote()).is_err());
    }

    #[test]
    fn transport_sweep_matches_analytic_sweep_exactly() {
        // One source of truth: pricing the transport's counters yields
        // bit-identical points to pricing the cache's counters.
        let t = trace();
        let groups = [1usize, 3, 5];
        let analytic = cost_sweep(&t, 300, &groups, CostModel::remote()).unwrap();
        let measured = cost_sweep_via_transport(&t, 300, &groups, CostModel::remote()).unwrap();
        assert_eq!(analytic, measured);
    }

    #[test]
    fn grouping_wins_when_latency_dominates() {
        let t = trace();
        let points = cost_sweep(&t, 300, &[1, 5], CostModel::remote()).unwrap();
        let lru = points.iter().find(|p| p.group_size == 1).unwrap();
        let g5 = points.iter().find(|p| p.group_size == 5).unwrap();
        assert!(
            g5.total_time < lru.total_time,
            "g5 {} vs lru {}",
            g5.total_time,
            lru.total_time
        );
        // ...even though it moves more data.
        assert!(g5.files_transferred > lru.files_transferred);
    }

    #[test]
    fn pure_bandwidth_model_penalises_grouping() {
        // With zero request latency, every speculative transfer is pure
        // overhead, so LRU must be at least as cheap.
        let t = trace();
        let model = CostModel {
            request_latency: 0.0,
            transfer_time: 1.0,
            transfer_per_unit: 0.0,
        };
        let points = cost_sweep(&t, 300, &[1, 10], model).unwrap();
        let lru = points.iter().find(|p| p.group_size == 1).unwrap();
        let g10 = points.iter().find(|p| p.group_size == 10).unwrap();
        assert!(lru.total_time <= g10.total_time);
    }

    #[test]
    fn table_renders_relative_column() {
        let t = trace();
        let points = cost_sweep(&t, 200, &[1, 5], CostModel::lan()).unwrap();
        let table = cost_table("cost", &points);
        let text = table.render();
        assert!(text.contains("vs lru"));
        assert!(text.contains('%'));
    }
}

//! Scalar math helpers for the analytic capacity planner.
//!
//! The planner (`fgcache-plan`) needs three pieces of special-function
//! machinery that `std` does not provide: the log-gamma function (for the
//! Berthet/Che closed-form miss rate under power-law popularity), the
//! generalized harmonic number (the Zipf normalizing constant), and a
//! robust scalar root bracketer/bisector (for the characteristic-time
//! fixed point). They live here, dependency-free, so every crate shares
//! one implementation and one set of golden tests.

use crate::ValidationError;

/// Lanczos coefficients (g = 7, n = 9) for [`ln_gamma`]. The classic
/// parameterization from Numerical Recipes / Godfrey; accurate to ~1e-13
/// relative error over the positive reals, far tighter than the planner's
/// validation tolerances need.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0` (Lanczos approximation).
///
/// The planner only ever evaluates `Γ` at positive arguments
/// (`Γ(1 - 1/α)` for `α > 1`), so the reflection-formula branch for
/// non-positive arguments is deliberately not implemented: non-positive
/// or non-finite input returns `f64::NAN`, which every caller treats as
/// "model out of its validity range".
pub fn ln_gamma(x: f64) -> f64 {
    if !x.is_finite() || x <= 0.0 {
        return f64::NAN;
    }
    // Lanczos is evaluated at x - 1 (the "Γ(z+1)" form).
    let z = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`; `NAN` outside that range.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// The generalized harmonic number `H_{n,s} = Σ_{k=1..n} k^{-s}` — the
/// Zipf(s) normalizing constant over a universe of `n` files.
///
/// Summed smallest-terms-first so the many tiny tail terms are not
/// swallowed by the head of the series.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `n == 0` or `s` is not finite.
pub fn generalized_harmonic(n: usize, s: f64) -> Result<f64, ValidationError> {
    if n == 0 {
        return Err(ValidationError::new("n", "must be greater than zero"));
    }
    if !s.is_finite() {
        return Err(ValidationError::new("s", "exponent must be finite"));
    }
    let mut total = 0.0;
    for k in (1..=n).rev() {
        total += (k as f64).powf(-s);
    }
    Ok(total)
}

/// Finds the root of a continuous **non-decreasing** `f` on `[lo, hi]` by
/// bisection: the returned `x` satisfies `|f(x)| ≤` whatever `width`-
/// limited bisection can achieve after `max_iter` halvings (the interval
/// shrinks to `(hi - lo) / 2^max_iter`).
///
/// The bracket is taken on faith in release code but checked in debug:
/// `f(lo) ≤ 0 ≤ f(hi)`. With an inverted bracket the result is clamped
/// into `[lo, hi]` and meaningless — callers construct their brackets
/// from monotonicity arguments (see `fgcache-plan::che`).
pub fn bisect_increasing(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, max_iter: u32) -> f64 {
    debug_assert!(lo <= hi, "bisection bracket inverted: [{lo}, {hi}]");
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // interval narrower than f64 spacing
        }
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let g = gamma(i as f64 + 1.0);
            assert!((g - f).abs() / f < 1e-12, "Γ({}) = {g}, want {f}", i + 1);
        }
    }

    #[test]
    fn gamma_half_integer_golden() {
        // Γ(1/2) = √π; Γ(3/2) = √π/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((gamma(0.5) - sqrt_pi).abs() < 1e-12);
        assert!((gamma(1.5) - sqrt_pi / 2.0).abs() < 1e-12);
        // The planner's workhorse: Γ(1 - 1/α) at α = 2 is Γ(1/2).
        assert!((gamma(1.0 - 1.0 / 2.0) - sqrt_pi).abs() < 1e-12);
    }

    #[test]
    fn gamma_rejects_nonpositive() {
        assert!(gamma(0.0).is_nan());
        assert!(gamma(-1.5).is_nan());
        assert!(gamma(f64::NAN).is_nan());
        assert!(ln_gamma(f64::INFINITY).is_nan());
    }

    #[test]
    fn harmonic_golden_values() {
        // H_{4,1} = 1 + 1/2 + 1/3 + 1/4 = 25/12.
        let h = generalized_harmonic(4, 1.0).unwrap();
        assert!((h - 25.0 / 12.0).abs() < 1e-12);
        // s = 0 degenerates to a plain count.
        assert!((generalized_harmonic(10, 0.0).unwrap() - 10.0).abs() < 1e-12);
        // ζ(2) = π²/6; H_{n,2} converges towards it from below.
        let h2 = generalized_harmonic(1_000_000, 2.0).unwrap();
        let zeta2 = std::f64::consts::PI.powi(2) / 6.0;
        assert!(h2 < zeta2 && zeta2 - h2 < 1.1e-6, "H = {h2}");
    }

    #[test]
    fn harmonic_rejects_bad_inputs() {
        assert!(generalized_harmonic(0, 1.0).is_err());
        assert!(generalized_harmonic(5, f64::NAN).is_err());
    }

    #[test]
    fn bisection_finds_known_roots() {
        // x² - 2 on [0, 2] is increasing: root √2.
        let r = bisect_increasing(|x| x * x - 2.0, 0.0, 2.0, 80);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
        // ln x on [0.1, 10]: root 1.
        let r = bisect_increasing(|x| x.ln(), 0.1, 10.0, 80);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bisection_handles_degenerate_bracket() {
        let r = bisect_increasing(|x| x, 3.0, 3.0, 10);
        assert!((r - 3.0).abs() < 1e-12);
    }
}

//! A small, dependency-free Zipf sampler.
//!
//! File system workloads exhibit severe popularity skew; the paper leans on
//! this ("a very high skew in access frequencies"). We sample ranks from a
//! Zipf distribution with exponent `s`: `P(rank k) ∝ 1 / k^s` for
//! `k = 1..=n`. Sampling uses a precomputed cumulative table and binary
//! search, which is plenty fast for the universe sizes the generator uses.

use fgcache_types::rng::RandomSource;
use fgcache_types::ValidationError;

/// A Zipf distribution over `0..n` (rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `n == 0`, or if `s` is negative or
    /// not finite.
    pub fn new(n: usize, s: f64) -> Result<Self, ValidationError> {
        if n == 0 {
            return Err(ValidationError::new("n", "must be greater than zero"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ValidationError::new(
                "s",
                "exponent must be finite and non-negative",
            ));
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise so the last entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cumulative })
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the distribution is over zero items (never true
    /// for a constructed `Zipf`; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(idx) => (idx + 1).min(self.cumulative.len() - 1),
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }

    /// Probability of sampling `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    pub fn probability(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_types::rng::SeededRng;

    #[test]
    fn rejects_empty_and_bad_exponent() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 1.2).unwrap();
        let mut rng = SeededRng::new(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(50, 0.9).unwrap();
        let total: f64 = (0..z.len()).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_ranks_are_more_popular() {
        let z = Zipf::new(100, 1.1).unwrap();
        for k in 1..100 {
            assert!(z.probability(k - 1) >= z.probability(k));
        }
    }

    #[test]
    fn samples_stay_in_range_and_skew_low() {
        let z = Zipf::new(20, 1.2).unwrap();
        let mut rng = SeededRng::new(42);
        let mut counts = vec![0usize; 20];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 20);
            counts[k] += 1;
        }
        // Rank 0 should clearly dominate rank 19 under heavy skew.
        assert!(counts[0] > counts[19] * 4, "counts: {counts:?}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(30, 1.0).unwrap();
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}

//! Throughput of the successor-entropy analyses.

use fgcache_bench::harness;
use fgcache_entropy::{filtered_entropy, successor_sequence_entropy};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use std::hint::black_box;

const EVENTS: usize = 20_000;

fn main() {
    let trace = SynthConfig::profile(WorkloadProfile::Users)
        .events(EVENTS)
        .seed(3)
        .build()
        .expect("profile is valid")
        .generate();
    let files = trace.file_sequence();

    for k in [1usize, 4, 12, 20] {
        harness::run(
            &format!("successor_entropy/k_{k}"),
            Some(EVENTS as u64),
            || successor_sequence_entropy(black_box(&files), k).expect("valid k"),
        );
    }

    for cap in [10usize, 500] {
        harness::run(
            &format!("filtered_entropy/filter_{cap}"),
            Some(EVENTS as u64),
            || filtered_entropy(black_box(&trace), cap, 1).expect("valid parameters"),
        );
    }
}

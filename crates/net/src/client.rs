//! [`NetClient`]: the TCP side of the [`Transport`] trait.
//!
//! A client holds a small pool of connections to one server. Group
//! fetches become `Fetch` frames; [`Transport::fetch_batch`] pipelines a
//! whole batch on one connection (write every frame, then read every
//! reply), which is where the latency win of batching comes from on a
//! real socket.
//!
//! # Timeouts and pooling
//!
//! Every connection carries a read/write timeout. A connection that
//! errors or times out is **dropped, not pooled**: a late reply to a
//! timed-out request would otherwise desync the frame stream for the next
//! request on that connection. Retrying is the job of
//! [`RetryingTransport`](crate::RetryingTransport) layered on top — the
//! retried request reuses its request id, so the server's reply cache
//! makes the retry idempotent even though the original may have executed.

use std::net::TcpStream;
use std::time::Duration;

use fgcache_types::{FileId, TransportError, TransportErrorKind};

use crate::transport::{request_id, GroupReply, GroupRequest, Transport, TransportStats};
use crate::wire::{io_to_transport, read_frame, write_frame, Message, WireStats};

/// Default per-operation socket timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);

/// Default connection-pool size.
pub const DEFAULT_POOL_SIZE: usize = 2;

/// A pooled TCP client for a group-fetch server. See the
/// [module docs](self).
#[derive(Debug)]
pub struct NetClient {
    addr: String,
    pool: Vec<TcpStream>,
    pool_size: usize,
    timeout: Duration,
    namespace: u64,
    next_seq: u64,
    stats: TransportStats,
}

impl NetClient {
    /// Connects to a server at `addr` (`host:port`), eagerly establishing
    /// one connection to validate the address.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportErrorKind::ConnectionLost`] error if the
    /// server is unreachable.
    pub fn connect(addr: &str) -> Result<Self, TransportError> {
        let mut client = NetClient {
            addr: addr.to_string(),
            pool: Vec::new(),
            pool_size: DEFAULT_POOL_SIZE,
            timeout: DEFAULT_TIMEOUT,
            namespace: 0,
            next_seq: 0,
            stats: TransportStats::default(),
        };
        let probe = client.open_connection()?;
        client.check_in(probe);
        Ok(client)
    }

    /// Overrides the per-operation socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self.pool.clear(); // re-open with the new timeout on next use
        self
    }

    /// Overrides the connection-pool size (minimum 1).
    #[must_use]
    pub fn with_pool_size(mut self, size: usize) -> Self {
        self.pool_size = size.max(1);
        self.pool.truncate(self.pool_size);
        self
    }

    /// Namespaces this client's request ids (see
    /// [`request_id`]); concurrent clients of one
    /// server must use distinct namespaces.
    #[must_use]
    pub fn with_id_namespace(mut self, namespace: u64) -> Self {
        self.namespace = namespace;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Builds the next [`GroupRequest`] in this client's id sequence.
    pub fn next_request(&mut self, files: Vec<FileId>) -> GroupRequest {
        let id = request_id(self.namespace, self.next_seq);
        self.next_seq += 1;
        GroupRequest::new(id, files)
    }

    /// Asks the server for its cache counters — the remote equivalent of
    /// reading `stats()`/`group_stats()` in process.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] on connection or protocol failure.
    pub fn server_stats(&mut self) -> Result<WireStats, TransportError> {
        let request = self.next_request(Vec::new());
        let reply = self.round_trip(&Message::StatsRequest {
            request_id: request.request_id,
        })?;
        match reply {
            Message::StatsReply { stats, .. } => Ok(stats),
            other => Err(unexpected(&other).with_request_id(request.request_id)),
        }
    }

    /// Pushes a membership view to the server (a cluster node), waiting
    /// for the acknowledgement. Returns the epoch the node now holds —
    /// its current one if `epoch` was stale.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] on connection or protocol failure,
    /// including the server rejecting the update (not a cluster node).
    pub fn send_cluster_update(
        &mut self,
        epoch: u64,
        members: &[(u64, String)],
    ) -> Result<u64, TransportError> {
        let request = self.next_request(Vec::new());
        let reply = self.round_trip(&Message::ClusterUpdate {
            request_id: request.request_id,
            epoch,
            members: members.to_vec(),
        })?;
        match reply {
            Message::ClusterUpdateAck { epoch, .. } => Ok(epoch),
            Message::Error { message, .. } => Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("cluster update rejected: {message}"),
            )
            .with_request_id(request.request_id)),
            other => Err(unexpected(&other).with_request_id(request.request_id)),
        }
    }

    /// Asks the server to shut down, waiting for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] on connection or protocol failure.
    pub fn send_shutdown(&mut self) -> Result<(), TransportError> {
        let request = self.next_request(Vec::new());
        let reply = self.round_trip(&Message::Shutdown {
            request_id: request.request_id,
        })?;
        match reply {
            Message::ShutdownAck { .. } => Ok(()),
            other => Err(unexpected(&other).with_request_id(request.request_id)),
        }
    }

    fn open_connection(&self) -> Result<TcpStream, TransportError> {
        let stream = TcpStream::connect(&self.addr).map_err(io_to_transport)?;
        stream.set_nodelay(true).map_err(io_to_transport)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(io_to_transport)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(io_to_transport)?;
        Ok(stream)
    }

    fn check_out(&mut self) -> Result<TcpStream, TransportError> {
        match self.pool.pop() {
            Some(stream) => Ok(stream),
            None => self.open_connection(),
        }
    }

    fn check_in(&mut self, stream: TcpStream) {
        if self.pool.len() < self.pool_size {
            self.pool.push(stream);
        }
    }

    /// One request/reply exchange. The connection returns to the pool
    /// only on success; any failure drops it (see the module docs).
    fn round_trip(&mut self, message: &Message) -> Result<Message, TransportError> {
        let mut stream = self.check_out()?;
        let exchange = (|| {
            write_frame(&mut stream, message).map_err(io_to_transport)?;
            read_frame(&mut stream)
        })();
        self.stats.round_trips += 1;
        match exchange {
            Ok(reply) => {
                self.check_in(stream);
                Ok(reply)
            }
            Err(err) => Err(err.with_request_id(message.request_id())),
        }
    }

    /// Interprets a server reply to a fetch, updating counters when it is
    /// the matching `FetchReply`.
    fn accept_fetch_reply(
        &mut self,
        request: &GroupRequest,
        reply: Message,
    ) -> Result<GroupReply, TransportError> {
        match reply {
            Message::FetchReply { request_id, files } => {
                let reply = GroupReply { request_id, files };
                if reply.request_id == request.request_id {
                    self.stats.requests += 1;
                    self.stats.files_moved += reply.files.len() as u64;
                    self.stats.hits += reply.hits();
                    self.stats.misses += reply.misses();
                }
                // A mismatched id (stale duplicate) is returned as-is;
                // the retry layer discards and re-asks.
                Ok(reply)
            }
            Message::Error { message, .. } => Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("server error: {message}"),
            )
            .with_request_id(request.request_id)),
            other => Err(unexpected(&other).with_request_id(request.request_id)),
        }
    }
}

fn unexpected(reply: &Message) -> TransportError {
    TransportError::new(
        TransportErrorKind::Protocol,
        format!("unexpected reply: {reply:?}"),
    )
}

impl Transport for NetClient {
    fn fetch_group(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        let reply = self.round_trip(&Message::Fetch {
            request_id: request.request_id,
            files: request.files.clone(),
        })?;
        self.accept_fetch_reply(request, reply)
    }

    /// Sends the v2 `FetchOwned` frame, telling the receiving node to
    /// serve the group itself rather than proxy it onward.
    fn fetch_owned(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        let reply = self.round_trip(&Message::FetchOwned {
            request_id: request.request_id,
            files: request.files.clone(),
        })?;
        self.accept_fetch_reply(request, reply)
    }

    /// Pipelines the whole batch on one connection: every `Fetch` frame is
    /// written before any reply is read, so the batch pays one
    /// round-trip's worth of latency instead of one per request.
    fn fetch_batch(&mut self, batch: &[GroupRequest]) -> Vec<Result<GroupReply, TransportError>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let mut stream = match self.check_out() {
            Ok(s) => s,
            Err(err) => {
                return batch
                    .iter()
                    .map(|r| {
                        Err(TransportError::new(err.kind(), err.detail())
                            .with_request_id(r.request_id))
                    })
                    .collect()
            }
        };
        self.stats.round_trips += 1;
        for request in batch {
            let frame = Message::Fetch {
                request_id: request.request_id,
                files: request.files.clone(),
            };
            if let Err(err) = write_frame(&mut stream, &frame).map_err(io_to_transport) {
                // Connection is gone; every request in the batch fails.
                return batch
                    .iter()
                    .map(|r| {
                        Err(TransportError::new(err.kind(), err.detail())
                            .with_request_id(r.request_id))
                    })
                    .collect();
            }
        }
        let mut results = Vec::with_capacity(batch.len());
        let mut broken = false;
        for request in batch {
            if broken {
                results.push(Err(TransportError::new(
                    TransportErrorKind::ConnectionLost,
                    "connection failed earlier in this batch",
                )
                .with_request_id(request.request_id)));
                continue;
            }
            match read_frame(&mut stream) {
                Ok(reply) => results.push(self.accept_fetch_reply(request, reply)),
                Err(err) => {
                    broken = true;
                    results.push(Err(err.with_request_id(request.request_id)));
                }
            }
        }
        if !broken {
            self.check_in(stream);
        }
        results
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

//! Deterministic interleaving explorer ("mini-loom") for the atomics
//! facade — compiled only under the `fgcache_model` feature.
//!
//! [`explore`] runs a *scenario* (a closure that builds some shared
//! state and spawns 2–4 virtual threads) under every schedule a
//! depth-first search over scheduling decisions can produce, subject to
//! a preemption bound. Each virtual thread is a real OS thread driven
//! in lockstep: exactly one thread runs at a time, and control changes
//! hands only at *instrumented operations* — facade atomic ops and
//! [`ModelMutex`] lock/unlock — so an execution is a pure function of
//! the recorded choice sequence and can be replayed exactly.
//!
//! # Shadow memory and memory orderings
//!
//! Every facade atomic registers a *location*. A location keeps its
//! full store history: each store records the storing thread's vector
//! clock (`hb`) and, for `Release` stores, a synchronization clock
//! (`sync`). A load does **not** simply return the newest value — it
//! may read any store that per-location coherence and happens-before
//! allow:
//!
//! * it can never read a store older than one this thread already read
//!   or wrote (coherence floor), and
//! * it can never read a store older than the newest store that
//!   *happened-before* the load (a `Release` store becomes
//!   happens-before once the reader `Acquire`-loads it, or via a
//!   [`ModelMutex`] edge).
//!
//! Everything else — in particular stores published without a
//! synchronizing edge — is *stale but readable*, and the explorer
//! branches over every readable store. This is what makes a missing
//! `Release`/`Acquire` pair observable: demote a publication store to
//! `Relaxed` and some schedule will read the old value, which is
//! exactly how the seeded-mutation tests in `fgcache-core` prove the
//! checker has teeth.
//!
//! An `Acquire` load that reads a `Release` store joins the store's
//! `sync` clock into the reader's clock. RMWs (`fetch_add`, CAS) read
//! the newest store in modification order, as real coherent hardware
//! does.
//!
//! # Exploration strategy
//!
//! Depth-first search over choice points (which thread runs next;
//! which readable store a load returns), replaying a recorded prefix
//! and extending it — the classic stateless-replay DFS. Two bounds
//! keep it finite and fast:
//!
//! * **Bounded preemption** ([`ModelOptions::max_preemptions`]):
//!   switching away from a thread that could still run costs one
//!   preemption; once spent, the scheduler runs each thread to its
//!   next blocking point. Context switches at blocks/finishes are
//!   free.
//! * **State hashing** ([`ModelOptions::state_hashing`]): at each
//!   scheduling point in fresh territory the full shadow state
//!   (store histories, clocks, floors, statuses, mutexes) is hashed;
//!   a state seen before is not branched again — its futures were
//!   explored from its first visit. Sound up to hash collisions
//!   (64-bit FNV-1a over the serialized state).
//!
//! # What the explorer cannot prove
//!
//! See DESIGN.md §14 for the full limitation list: no `SeqCst` total
//! order (treated as `AcqRel`; the workspace bans `SeqCst` anyway), no
//! release *sequences* (a `Release` store followed by RMWs from other
//! threads does not transfer the release clock through the RMW chain),
//! `compare_exchange_weak` never fails spuriously, and scenarios
//! beyond the preemption bound are unexplored.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Maximum number of virtual threads per scenario.
pub const MAX_THREADS: usize = 4;
/// Vector-clock width: the virtual threads plus the controller.
const CLOCK_SIZE: usize = MAX_THREADS + 1;
/// The controller's clock component.
const CTRL: usize = MAX_THREADS;

type VClock = [u32; CLOCK_SIZE];

fn clock_le(a: &VClock, b: &VClock) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

fn clock_join(into: &mut VClock, other: &VClock) {
    for (x, y) in into.iter_mut().zip(other.iter()) {
        *x = (*x).max(*y);
    }
}

/// One store in a location's history.
#[derive(Debug, Clone, Copy)]
struct StoreEvent {
    value: u64,
    /// The storing actor's clock at store time: decides visibility
    /// ("a newer store that happened-before the reader hides me").
    hb: VClock,
    /// For `Release` stores: the clock an `Acquire` reader joins.
    sync: Option<VClock>,
}

#[derive(Debug, Default)]
struct Location {
    stores: Vec<StoreEvent>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing user code (or about to); the scheduler waits for it
    /// to park or finish before making any decision.
    Running,
    /// Parked at an instrumented operation, waiting for a grant.
    Waiting,
    /// Parked on a held [`ModelMutex`]; not schedulable until released.
    Blocked(usize),
    /// Body returned (or panicked — the failure is recorded).
    Finished,
}

#[derive(Debug)]
struct ThreadRt {
    clock: VClock,
    floors: Vec<usize>,
    status: Status,
}

#[derive(Debug)]
struct MutexRt {
    held_by: Option<usize>,
    clock: VClock,
}

/// One recorded decision: which alternative was taken, out of how many.
#[derive(Debug, Clone, Copy)]
struct Choice {
    chosen: u32,
    alts: u32,
}

struct ExecState {
    locations: Vec<Location>,
    /// First-touch registry mapping an atomic's address to its shadow
    /// location, resolved *inside* each operation so an access is one
    /// scheduling point and no lock is held across a park.
    loc_by_addr: std::collections::HashMap<usize, usize>,
    threads: Vec<ThreadRt>,
    ctrl_clock: VClock,
    ctrl_floors: Vec<usize>,
    mutexes: Vec<MutexRt>,
    /// Thread currently granted one operation (consumed on wake).
    current: Option<usize>,
    script: Vec<Choice>,
    trail: Vec<Choice>,
    pos: usize,
    preemptions_left: usize,
    last_ran: Option<usize>,
    state_hashing: bool,
    seen: HashSet<u64>,
    pruned: u64,
    failure: Option<String>,
    aborted: bool,
}

struct ExecHandle {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ExecHandle>>> = const { RefCell::new(None) };
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Locks the execution state, recovering from poison: a panicking
/// virtual thread must not take the whole explorer down with a
/// poisoned-mutex cascade — the recorded failure already carries the
/// diagnosis.
fn lock_state(handle: &ExecHandle) -> MutexGuard<'_, ExecState> {
    match handle.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn current_handle() -> Option<Arc<ExecHandle>> {
    CURRENT.with(|c| c.borrow().clone())
}

impl ExecState {
    /// Looks up (or first-touch registers) the shadow location for the
    /// atomic at `addr`, whose current value is `initial`.
    fn resolve(&mut self, actor: usize, addr: usize, initial: u64) -> usize {
        if let Some(&loc) = self.loc_by_addr.get(&addr) {
            return loc;
        }
        let loc = self.locations.len();
        let clock = *self.clock_of(actor);
        self.locations.push(Location {
            stores: vec![StoreEvent {
                value: initial,
                hb: clock,
                sync: None,
            }],
        });
        self.loc_by_addr.insert(addr, loc);
        loc
    }

    fn clock_of(&mut self, actor: usize) -> &mut VClock {
        if actor == CTRL {
            &mut self.ctrl_clock
        } else {
            &mut self.threads[actor].clock
        }
    }

    fn floor_of(&mut self, actor: usize, loc: usize) -> &mut usize {
        let floors = if actor == CTRL {
            &mut self.ctrl_floors
        } else {
            &mut self.threads[actor].floors
        };
        if floors.len() <= loc {
            floors.resize(loc + 1, 0);
        }
        &mut floors[loc]
    }

    fn tick(&mut self, actor: usize) {
        self.clock_of(actor)[actor] += 1;
    }

    /// Consumes one choice with `alts` alternatives; scripted positions
    /// replay the recorded decision verbatim (including its recorded
    /// alternative count, so backtracking stays aligned).
    fn choose(&mut self, alts: u32) -> u32 {
        if self.aborted {
            return 0;
        }
        let choice = if self.pos < self.script.len() {
            self.script[self.pos]
        } else {
            Choice { chosen: 0, alts }
        };
        debug_assert!(choice.chosen < choice.alts.max(1));
        self.trail.push(choice);
        self.pos += 1;
        choice.chosen
    }

    /// Indices of stores the actor may read at `loc`: everything from
    /// `max(coherence floor, newest happened-before store)` onward.
    fn readable_floor(&mut self, actor: usize, loc: usize) -> usize {
        let clock = *self.clock_of(actor);
        let stores = &self.locations[loc].stores;
        let mut hb_floor = 0;
        for (i, s) in stores.iter().enumerate().rev() {
            if clock_le(&s.hb, &clock) {
                hb_floor = i;
                break;
            }
        }
        (*self.floor_of(actor, loc)).max(hb_floor)
    }

    fn apply_read(&mut self, actor: usize, loc: usize, index: usize, order: Ordering) -> u64 {
        *self.floor_of(actor, loc) = index;
        let store = self.locations[loc].stores[index];
        if is_acquire(order) {
            if let Some(sync) = store.sync {
                clock_join(self.clock_of(actor), &sync);
            }
        }
        store.value
    }

    fn apply_write(&mut self, actor: usize, loc: usize, value: u64, order: Ordering) {
        let clock = *self.clock_of(actor);
        let index = self.locations[loc].stores.len();
        *self.floor_of(actor, loc) = index;
        self.locations[loc].stores.push(StoreEvent {
            value,
            hb: clock,
            sync: is_release(order).then_some(clock),
        });
    }

    /// FNV-1a over the full shadow state; used to prune scheduling
    /// points whose state was already explored.
    fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut put = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for loc in &self.locations {
            put(0x10c0);
            for s in &loc.stores {
                put(s.value);
                for c in s.hb {
                    put(c as u64);
                }
                match s.sync {
                    None => put(0),
                    Some(sc) => {
                        put(1);
                        for c in sc {
                            put(c as u64);
                        }
                    }
                }
            }
        }
        for t in &self.threads {
            put(0x7123);
            for c in t.clock {
                put(c as u64);
            }
            for &f in &t.floors {
                put(f as u64);
            }
            put(match t.status {
                Status::Running => 1,
                Status::Waiting => 2,
                Status::Blocked(m) => 0x100 + m as u64,
                Status::Finished => 3,
            });
        }
        for m in &self.mutexes {
            put(0x3u64);
            put(m.held_by.map_or(u64::MAX, |t| t as u64));
            for c in m.clock {
                put(c as u64);
            }
        }
        put(self.preemptions_left as u64);
        put(self.last_ran.map_or(u64::MAX, |t| t as u64));
        h
    }
}

fn is_acquire(order: Ordering) -> bool {
    !matches!(order, Ordering::Relaxed | Ordering::Release)
}

fn is_release(order: Ordering) -> bool {
    !matches!(order, Ordering::Relaxed | Ordering::Acquire)
}

/// Runs `f` against the execution state as one instrumented operation:
/// the controller applies it directly; a virtual thread parks and waits
/// until the scheduler grants it the next operation.
fn op<R>(f: impl FnOnce(&mut ExecState, usize) -> R) -> Option<R> {
    let handle = current_handle()?;
    let tid = TID.with(|t| t.get());
    let mut st = lock_state(&handle);
    match tid {
        None => {
            let r = f(&mut st, CTRL);
            Some(r)
        }
        Some(t) => {
            if std::env::var_os("FGCACHE_MODEL_TRACE").is_some() {
                eprintln!("[op] t{t} parks");
            }
            st.threads[t].status = Status::Waiting;
            handle.cv.notify_all();
            while st.current != Some(t) {
                st = match handle.cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
            st.current = None;
            st.threads[t].status = Status::Running;
            let r = f(&mut st, t);
            handle.cv.notify_all();
            Some(r)
        }
    }
}

/// Instrumented load: branches over every readable store. `addr` names
/// the atomic (first touch registers it with value `initial`).
pub(crate) fn atomic_load(addr: usize, initial: u64, order: Ordering) -> Option<u64> {
    op(|st, actor| {
        let loc = st.resolve(actor, addr, initial);
        st.tick(actor);
        let lo = st.readable_floor(actor, loc);
        let newest = st.locations[loc].stores.len() - 1;
        let alts = (newest - lo + 1) as u32;
        let k = if alts > 1 { st.choose(alts) } else { 0 };
        // Choice 0 is the newest store (the SC-like execution first).
        st.apply_read(actor, loc, newest - k as usize, order)
    })
}

/// Instrumented store.
pub(crate) fn atomic_store(addr: usize, initial: u64, value: u64, order: Ordering) -> Option<()> {
    op(|st, actor| {
        let loc = st.resolve(actor, addr, initial);
        st.tick(actor);
        st.apply_write(actor, loc, value, order);
    })
}

/// Instrumented read-modify-write (`fetch_add`, `swap`, …): reads the
/// newest store in modification order, writes `f(old)`.
pub(crate) fn atomic_rmw(
    addr: usize,
    initial: u64,
    order: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> Option<u64> {
    op(|st, actor| {
        let loc = st.resolve(actor, addr, initial);
        st.tick(actor);
        let newest = st.locations[loc].stores.len() - 1;
        let old = st.apply_read(actor, loc, newest, order);
        st.apply_write(actor, loc, f(old), order);
        old
    })
}

/// Instrumented compare-exchange (strong semantics: never spuriously
/// fails — see the module docs for why that is a modeled restriction).
pub(crate) fn atomic_cas(
    addr: usize,
    initial: u64,
    current: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Option<Result<u64, u64>> {
    op(|st, actor| {
        let loc = st.resolve(actor, addr, initial);
        st.tick(actor);
        let newest = st.locations[loc].stores.len() - 1;
        let old = st.locations[loc].stores[newest].value;
        if old == current {
            let read = st.apply_read(actor, loc, newest, success);
            st.apply_write(actor, loc, new, success);
            Ok(read)
        } else {
            Err(st.apply_read(actor, loc, newest, failure))
        }
    })
}

/// Exploration bounds and switches.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Budget of scheduler switches away from a still-runnable thread.
    pub max_preemptions: usize,
    /// Hard cap on explored schedules; [`explore`] panics when the DFS
    /// would exceed it, so "exhaustive within a bounded schedule
    /// count" is an enforced claim rather than a hope.
    pub max_schedules: u64,
    /// Prune scheduling points whose full shadow state was already
    /// visited (sound up to 64-bit hash collisions).
    pub state_hashing: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            max_preemptions: 2,
            max_schedules: 100_000,
            state_hashing: true,
        }
    }
}

/// What an [`explore`] run did.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules executed to completion.
    pub schedules: u64,
    /// Scheduling points skipped by state-hash pruning.
    pub pruned: u64,
}

/// Handle passed to a scenario; spawns and drives the virtual threads.
pub struct Scope {
    handle: Arc<ExecHandle>,
}

impl Scope {
    /// Runs `bodies` as virtual threads under the model scheduler and
    /// returns when all of them have finished. May be called more than
    /// once per scenario (phased scenarios). Panics — reporting the
    /// failing schedule — if any thread body panics or the threads
    /// deadlock on model mutexes.
    pub fn threads(&self, bodies: &[&(dyn Fn() + Sync)]) {
        assert!(
            bodies.len() <= MAX_THREADS,
            "at most {MAX_THREADS} virtual threads"
        );
        {
            let mut st = lock_state(&self.handle);
            let clock = st.ctrl_clock;
            let floors = st.ctrl_floors.clone();
            st.threads = bodies
                .iter()
                .map(|_| ThreadRt {
                    clock,
                    floors: floors.clone(),
                    status: Status::Running,
                })
                .collect();
            st.current = None;
            st.last_ran = None;
        }
        std::thread::scope(|s| {
            for (t, body) in bodies.iter().enumerate() {
                let handle = Arc::clone(&self.handle);
                let body: &(dyn Fn() + Sync) = *body;
                s.spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&handle)));
                    TID.with(|cell| cell.set(Some(t)));
                    if std::env::var_os("FGCACHE_MODEL_TRACE").is_some() {
                        eprintln!("[thread] t{t} starts");
                    }
                    let result = catch_unwind(AssertUnwindSafe(body));
                    let mut st = lock_state(&handle);
                    if let Err(payload) = result {
                        if st.failure.is_none() {
                            st.failure = Some(panic_message(payload.as_ref()));
                        }
                        st.aborted = true;
                    }
                    st.threads[t].status = Status::Finished;
                    handle.cv.notify_all();
                });
            }
            self.schedule();
        });
        let mut st = lock_state(&self.handle);
        for t in 0..st.threads.len() {
            let clock = st.threads[t].clock;
            clock_join(&mut st.ctrl_clock, &clock);
            for loc in 0..st.threads[t].floors.len() {
                let f = st.threads[t].floors[loc];
                let ctrl = st.floor_of(CTRL, loc);
                *ctrl = (*ctrl).max(f);
            }
        }
        st.threads.clear();
        if let Some(failure) = st.failure.take() {
            let trail = render_trail(&st.trail);
            drop(st);
            panic!("model: schedule failed [{trail}]: {failure}");
        }
    }

    /// The lockstep scheduler: waits for quiescence (no thread running
    /// user code), then grants exactly one parked thread its next
    /// operation, choosing per the DFS script.
    fn schedule(&self) {
        let mut st = lock_state(&self.handle);
        loop {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            if st.current.is_some() || st.threads.iter().any(|t| t.status == Status::Running) {
                st = match self.handle.cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                continue;
            }
            let pickable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Waiting)
                .map(|(i, _)| i)
                .collect();
            if std::env::var_os("FGCACHE_MODEL_TRACE").is_some() {
                eprintln!(
                    "[sched] pos={} statuses={:?} pickable={pickable:?}",
                    st.pos,
                    st.threads.iter().map(|t| t.status).collect::<Vec<_>>()
                );
            }
            if pickable.is_empty() {
                // Every unfinished thread is blocked on a mutex.
                if st.failure.is_none() {
                    st.failure = Some("deadlock: all threads blocked on model mutexes".into());
                }
                st.aborted = true;
                for t in &mut st.threads {
                    if matches!(t.status, Status::Blocked(_)) {
                        t.status = Status::Waiting;
                    }
                }
                continue;
            }
            let forced = match st.last_ran {
                Some(l) if st.preemptions_left == 0 && pickable.contains(&l) => Some(l),
                _ => None,
            };
            let pick = if let Some(l) = forced {
                st.trail.push(Choice { chosen: 0, alts: 1 });
                st.pos += 1;
                l
            } else {
                let mut alts = pickable.len() as u32;
                if alts > 1 && st.state_hashing && !st.aborted && st.pos >= st.script.len() {
                    let h = st.state_hash();
                    if !st.seen.insert(h) {
                        st.pruned += 1;
                        alts = 1;
                    }
                }
                let c = st.choose(alts);
                pickable[c as usize]
            };
            if let Some(l) = st.last_ran {
                if l != pick && pickable.contains(&l) {
                    st.preemptions_left -= 1;
                }
            }
            st.last_ran = Some(pick);
            st.current = Some(pick);
            self.handle.cv.notify_all();
            while st.current.is_some() {
                st = match self.handle.cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn render_trail(trail: &[Choice]) -> String {
    let mut out = String::new();
    for (i, c) in trail.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{}/{}", c.chosen, c.alts));
    }
    out
}

/// Explores every bounded schedule of `scenario` and panics on the
/// first failing one (assertion failure in a virtual thread, deadlock,
/// or schedule-budget exhaustion), reporting the choice trail that
/// reproduces it. Returns exploration statistics on success.
///
/// The scenario closure runs once per schedule: create the shared
/// state *inside* it (so every execution starts fresh), spawn virtual
/// threads with [`Scope::threads`], and assert the post-conditions
/// after `threads` returns — at that point the controller has joined
/// every thread's clock, so loads observe the final state exactly.
pub fn explore(opts: &ModelOptions, scenario: impl Fn(&Scope)) -> Report {
    let mut script: Vec<Choice> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    loop {
        schedules += 1;
        if std::env::var_os("FGCACHE_MODEL_TRACE").is_some() {
            eprintln!("[explore] run #{schedules} script_len={}", script.len());
        }
        assert!(
            schedules <= opts.max_schedules,
            "model: exceeded the schedule budget ({} schedules)",
            opts.max_schedules
        );
        let handle = Arc::new(ExecHandle {
            state: Mutex::new(ExecState {
                locations: Vec::new(),
                loc_by_addr: std::collections::HashMap::new(),
                threads: Vec::new(),
                ctrl_clock: [0; CLOCK_SIZE],
                ctrl_floors: Vec::new(),
                mutexes: Vec::new(),
                current: None,
                script: script.clone(),
                trail: Vec::new(),
                pos: 0,
                preemptions_left: opts.max_preemptions,
                last_ran: None,
                state_hashing: opts.state_hashing,
                seen: std::mem::take(&mut seen),
                pruned: 0,
                failure: None,
                aborted: false,
            }),
            cv: Condvar::new(),
        });
        let scope = Scope {
            handle: Arc::clone(&handle),
        };
        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&handle)));
        TID.with(|cell| cell.set(None));
        let result = catch_unwind(AssertUnwindSafe(|| scenario(&scope)));
        CURRENT.with(|c| *c.borrow_mut() = None);
        let mut st = lock_state(&handle);
        seen = std::mem::take(&mut st.seen);
        pruned += st.pruned;
        if let Err(payload) = result {
            eprintln!(
                "model: failing schedule #{schedules} [trail {}]",
                render_trail(&st.trail)
            );
            drop(st);
            resume_unwind(payload);
        }
        let trail = std::mem::take(&mut st.trail);
        drop(st);
        match trail.iter().rposition(|c| c.chosen + 1 < c.alts) {
            Some(i) => {
                script.clear();
                script.extend_from_slice(&trail[..i]);
                script.push(Choice {
                    chosen: trail[i].chosen + 1,
                    alts: trail[i].alts,
                });
            }
            None => break,
        }
    }
    Report { schedules, pruned }
}

/// A mutex whose lock/unlock operations are model scheduling points
/// and happens-before edges — the stand-in for a shard's
/// `std::sync::Mutex` inside model scenarios.
///
/// Construct only inside a scenario (it registers with the active
/// execution). Mutual exclusion is enforced by the model scheduler;
/// the embedded real mutex exists so the data access itself is safe
/// Rust.
#[derive(Debug)]
pub struct ModelMutex<T> {
    inner: Mutex<T>,
    mid: usize,
}

impl<T> ModelMutex<T> {
    /// Creates a model mutex around `value`, registering it with the
    /// active execution.
    ///
    /// # Panics
    ///
    /// Panics if no model execution is active on this thread.
    pub fn new(value: T) -> Self {
        let mid = op(|st, actor| {
            let clock = *st.clock_of(actor);
            st.mutexes.push(MutexRt {
                held_by: None,
                clock,
            });
            st.mutexes.len() - 1
        })
        .expect("ModelMutex::new outside a model execution");
        ModelMutex {
            inner: Mutex::new(value),
            mid,
        }
    }

    /// Acquires the mutex, blocking (in model time) while it is held;
    /// acquisition joins the releaser's clock into the acquirer's —
    /// the lock-based happens-before edge.
    pub fn lock(&self) -> ModelMutexGuard<'_, T> {
        mutex_lock(self.mid);
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        ModelMutexGuard {
            owner: self,
            inner: Some(guard),
        }
    }
}

/// The model half of a mutex acquisition. A virtual thread that finds
/// the mutex held parks as [`Status::Blocked`] *inside* the grant
/// handshake — the release path flips it back to `Waiting` — so the
/// scheduler never burns grants (or, worse, force-grants under an
/// exhausted preemption budget) on a thread that cannot progress.
fn mutex_lock(mid: usize) {
    let handle = current_handle().expect("ModelMutex::lock outside a model execution");
    let tid = TID.with(|t| t.get());
    let mut st = lock_state(&handle);
    let Some(t) = tid else {
        // Controller: threads are quiescent, the mutex must be free.
        assert!(
            st.mutexes[mid].held_by.is_none(),
            "model: controller locking a held mutex"
        );
        st.tick(CTRL);
        st.mutexes[mid].held_by = Some(CTRL);
        let clock = st.mutexes[mid].clock;
        clock_join(st.clock_of(CTRL), &clock);
        return;
    };
    st.threads[t].status = Status::Waiting;
    loop {
        handle.cv.notify_all();
        while st.current != Some(t) {
            st = match handle.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        st.current = None;
        st.threads[t].status = Status::Running;
        st.tick(t);
        if st.aborted {
            handle.cv.notify_all();
            drop(st);
            panic!("model: execution aborted");
        }
        if st.mutexes[mid].held_by.is_none() {
            st.mutexes[mid].held_by = Some(t);
            let clock = st.mutexes[mid].clock;
            clock_join(st.clock_of(t), &clock);
            handle.cv.notify_all();
            return;
        }
        assert_ne!(
            st.mutexes[mid].held_by,
            Some(t),
            "model: re-entrant ModelMutex lock"
        );
        st.threads[t].status = Status::Blocked(mid);
    }
}

/// RAII guard for [`ModelMutex`]; releasing is a model operation that
/// publishes the holder's clock to the next acquirer.
#[derive(Debug)]
pub struct ModelMutexGuard<'a, T> {
    owner: &'a ModelMutex<T>,
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for ModelMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for ModelMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for ModelMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        let mid = self.owner.mid;
        op(|st, actor| {
            st.tick(actor);
            debug_assert_eq!(st.mutexes[mid].held_by, Some(actor));
            st.mutexes[mid].held_by = None;
            let clock = *st.clock_of(actor);
            clock_join(&mut st.mutexes[mid].clock, &clock);
            for t in &mut st.threads {
                if t.status == Status::Blocked(mid) {
                    t.status = Status::Waiting;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicU64;
    use std::sync::Mutex as StdMutex;

    fn opts() -> ModelOptions {
        ModelOptions::default()
    }

    /// Message passing with Release/Acquire: once the reader acquires
    /// the flag, it must observe the data — no schedule may read stale.
    #[test]
    fn litmus_message_passing_release_acquire_is_safe() {
        let report = explore(&opts(), |scope| {
            let data = AtomicU64::new(0);
            let flag = AtomicU64::new(0);
            let writer = || {
                data.store(42, Ordering::Release);
                flag.store(1, Ordering::Release);
            };
            let reader = || {
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(
                        data.load(Ordering::Acquire),
                        42,
                        "acquire of the flag must publish the data"
                    );
                }
            };
            scope.threads(&[&writer, &reader]);
        });
        assert!(report.schedules >= 2, "must explore > 1 schedule");
    }

    /// The same litmus with a Relaxed flag: the explorer must find the
    /// stale read — this is the property the seeded-mutation tests in
    /// fgcache-core lean on.
    #[test]
    fn litmus_message_passing_relaxed_flag_reads_stale() {
        let stale = StdMutex::new(false);
        explore(&opts(), |scope| {
            let data = AtomicU64::new(0);
            let flag = AtomicU64::new(0);
            let writer = || {
                data.store(42, Ordering::Release);
                flag.store(1, Ordering::Relaxed); // seeded ordering bug
            };
            let reader = || {
                if flag.load(Ordering::Acquire) == 1 && data.load(Ordering::Acquire) == 0 {
                    *match stale.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    } = true;
                }
            };
            scope.threads(&[&writer, &reader]);
        });
        assert!(
            *stale.lock().expect("stale flag poisoned"),
            "a Relaxed publication must expose a stale data read in some schedule"
        );
    }

    /// Store buffering: both threads may read the other's location as
    /// still zero — the model is weaker than naive interleaving.
    #[test]
    fn litmus_store_buffering_observes_both_zero() {
        let outcomes = StdMutex::new(std::collections::HashSet::new());
        explore(&opts(), |scope| {
            let x = AtomicU64::new(0);
            let y = AtomicU64::new(0);
            let r = (AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX));
            let t1 = || {
                x.store(1, Ordering::Release);
                r.0.store(y.load(Ordering::Acquire), Ordering::Release);
            };
            let t2 = || {
                y.store(1, Ordering::Release);
                r.1.store(x.load(Ordering::Acquire), Ordering::Release);
            };
            scope.threads(&[&t1, &t2]);
            let pair = (r.0.load(Ordering::Acquire), r.1.load(Ordering::Acquire));
            match outcomes.lock() {
                Ok(mut g) => {
                    g.insert(pair);
                }
                Err(p) => {
                    p.into_inner().insert(pair);
                }
            }
        });
        let seen = outcomes.lock().expect("outcomes poisoned");
        assert!(
            seen.contains(&(0, 0)),
            "store buffering (both read 0) must be observable, got {seen:?}"
        );
        assert!(!seen.contains(&(u64::MAX, u64::MAX)), "threads must run");
    }

    /// Per-location coherence: having read the new value, a thread can
    /// never go back to the old one, even fully Relaxed.
    #[test]
    fn litmus_read_read_coherence() {
        explore(&opts(), |scope| {
            let x = AtomicU64::new(0);
            let writer = || x.store(1, Ordering::Release);
            let reader = || {
                let a = x.load(Ordering::Acquire);
                let b = x.load(Ordering::Acquire);
                assert!(b >= a, "coherence violated: read {a} then {b}");
            };
            scope.threads(&[&writer, &reader]);
        });
    }

    /// RMWs read the newest store in modification order: concurrent
    /// increments never lose an update.
    #[test]
    fn litmus_rmw_never_loses_updates() {
        explore(&opts(), |scope| {
            let x = AtomicU64::new(0);
            let bump = || {
                x.fetch_add(1, Ordering::Relaxed);
                x.fetch_add(1, Ordering::Relaxed);
            };
            scope.threads(&[&bump, &bump]);
            assert_eq!(x.load(Ordering::Acquire), 4);
        });
    }

    /// The mutex is a happens-before edge: data written under the lock
    /// is visible to the next holder even with Relaxed atomics.
    #[test]
    fn model_mutex_is_exclusive_and_synchronizing() {
        explore(&opts(), |scope| {
            let m = ModelMutex::new(0u64);
            let shadow = AtomicU64::new(0);
            let t1 = || {
                let mut g = m.lock();
                *g += 1;
                shadow.store(*g, Ordering::Relaxed);
            };
            let t2 = || {
                let mut g = m.lock();
                // Lock edge: the Relaxed shadow store is visible here.
                if *g == 1 {
                    assert_eq!(shadow.load(Ordering::Relaxed), 1);
                }
                *g += 10;
            };
            scope.threads(&[&t1, &t2]);
            assert_eq!(*m.lock(), 11);
        });
    }

    /// CAS: strong semantics, and a failed CAS reports the current
    /// value so a claim loop always terminates.
    #[test]
    fn cas_claims_are_exclusive() {
        explore(&opts(), |scope| {
            let slot = AtomicU64::new(0);
            let winners = AtomicU64::new(0);
            let claim = |me: u64| {
                let (slot, winners) = (&slot, &winners);
                move || {
                    if slot
                        .compare_exchange(0, me, Ordering::Release, Ordering::Acquire)
                        .is_ok()
                    {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                }
            };
            let a = claim(1);
            let b = claim(2);
            scope.threads(&[&a, &b]);
            assert_eq!(winners.load(Ordering::Acquire), 1, "exactly one winner");
            assert_ne!(slot.load(Ordering::Acquire), 0);
        });
    }

    /// State hashing prunes real work without changing the verdict.
    #[test]
    fn state_hashing_prunes_but_preserves_outcomes() {
        // Convergent states need identical shadow memory, last-ran
        // thread and preemption budget: two single-load threads that
        // finish in either order (finish switches are free) then a
        // branchable pick between the two remaining threads is such a
        // diamond — the pick-point state after A,B,C equals the one
        // after B,A,C. Pure loads keep the store histories identical.
        let run = |hashing: bool| {
            explore(
                &ModelOptions {
                    state_hashing: hashing,
                    ..opts()
                },
                |scope| {
                    let x = AtomicU64::new(7);
                    let once = || {
                        assert_eq!(x.load(Ordering::Relaxed), 7);
                    };
                    let twice = || {
                        assert_eq!(x.load(Ordering::Relaxed), 7);
                        assert_eq!(x.load(Ordering::Relaxed), 7);
                    };
                    scope.threads(&[&once, &once, &twice, &twice]);
                },
            )
        };
        let pruned = run(true);
        let full = run(false);
        assert!(pruned.schedules <= full.schedules);
        assert!(pruned.pruned > 0, "pruning must fire on symmetric threads");
    }

    /// The schedule budget is enforced, not advisory.
    #[test]
    #[should_panic(expected = "schedule budget")]
    fn schedule_budget_is_enforced() {
        explore(
            &ModelOptions {
                max_schedules: 2,
                max_preemptions: 8,
                state_hashing: false,
            },
            |scope| {
                let x = AtomicU64::new(0);
                let t = || {
                    x.fetch_add(1, Ordering::Relaxed);
                    x.fetch_add(1, Ordering::Relaxed);
                };
                scope.threads(&[&t, &t]);
            },
        );
    }

    /// Outside any execution the facade falls back to the real atomic.
    #[test]
    fn fallback_outside_executions() {
        let x = AtomicU64::new(7);
        assert_eq!(x.load(Ordering::Acquire), 7);
        x.store(9, Ordering::Release);
        assert_eq!(x.fetch_add(1, Ordering::Relaxed), 9);
        assert_eq!(x.load(Ordering::Acquire), 10);
    }
}

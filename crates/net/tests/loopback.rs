//! Loopback TCP integration tests: a real [`BoundServer`] on an ephemeral
//! 127.0.0.1 port, exercised by [`NetClient`] through the full wire
//! protocol — fetches, pipelined batches, idempotent retries, stats, and
//! cooperative shutdown.

use std::sync::Arc;
use std::time::Duration;

use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{BoundServer, GroupRequest, NetClient, ServerHandle, Transport};
use fgcache_types::{FileId, TransportErrorKind};

fn server(capacity: usize, group: usize) -> (ServerHandle, Arc<ShardedAggregatingCache>) {
    let cache = Arc::new(
        ShardedAggregatingCacheBuilder::new(capacity)
            .shards(2)
            .group_size(group)
            .build()
            .expect("valid build"),
    );
    let bound = BoundServer::bind("127.0.0.1:0", Arc::clone(&cache)).expect("ephemeral bind");
    (bound.spawn(), cache)
}

fn req(id: u64, files: &[u64]) -> GroupRequest {
    GroupRequest::new(id, files.iter().map(|&f| FileId(f)).collect())
}

#[test]
fn fetch_round_trip_reports_real_provenance() {
    let (handle, cache) = server(40, 1);
    let mut client = NetClient::connect(handle.addr()).expect("connect");

    let cold = client.fetch_group(&req(0, &[5])).expect("cold fetch");
    let warm = client.fetch_group(&req(1, &[5])).expect("warm fetch");
    assert!(cold.files[0].outcome.is_miss());
    assert!(warm.files[0].outcome.is_hit());
    assert_eq!(cold.files[0].file, FileId(5));

    // The server-side cache really served these accesses.
    assert_eq!(cache.stats().accesses, 2);
    assert_eq!(cache.stats().hits, 1);
    handle.stop();
}

#[test]
fn server_stats_match_in_process_reads() {
    let (handle, cache) = server(60, 3);
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    for i in 0..50u64 {
        client.fetch_group(&req(i, &[i % 13])).expect("fetch");
    }
    let wire = client.server_stats().expect("stats reply");
    let stats = cache.stats();
    let group = cache.group_stats();
    assert_eq!(wire.accesses, stats.accesses);
    assert_eq!(wire.hits, stats.hits);
    assert_eq!(wire.misses, stats.misses);
    assert_eq!(wire.speculative_inserts, stats.speculative_inserts);
    assert_eq!(wire.evictions, stats.evictions);
    assert_eq!(wire.demand_fetches, group.demand_fetches);
    assert_eq!(wire.files_transferred, group.files_transferred);
    handle.stop();
}

#[test]
fn repeated_request_id_is_served_from_the_reply_cache() {
    let (handle, cache) = server(40, 1);
    let mut client = NetClient::connect(handle.addr()).expect("connect");

    let first = client.fetch_group(&req(7, &[3, 4])).expect("first");
    // A retry of the same request id — as RetryingTransport would issue
    // after a lost reply — must re-deliver, not re-execute.
    let again = client.fetch_group(&req(7, &[3, 4])).expect("retry");
    assert_eq!(
        first, again,
        "byte-identical re-delivery, provenance included"
    );
    assert_eq!(
        cache.stats().accesses,
        2,
        "two files accessed once each; the retry executed nothing"
    );
    handle.stop();
}

#[test]
fn reply_cache_hits_are_counted_and_capacity_zero_disables_dedup() {
    // Default window: a same-id retry is answered from the reply cache
    // and shows up in the wire-stats hit counter.
    let (handle, cache) = server(40, 1);
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    let first = client.fetch_group(&req(7, &[3])).expect("first");
    let again = client.fetch_group(&req(7, &[3])).expect("retry");
    assert_eq!(first, again);
    let wire = client.server_stats().expect("stats reply");
    assert_eq!(wire.reply_cache_hits, 1, "the retry hit the reply cache");
    assert_eq!(cache.stats().accesses, 1, "the retry executed nothing");
    handle.stop();

    // Capacity 0 through the builder knob: dedup is off, the retry
    // re-executes and no hit is ever counted.
    let cache = Arc::new(
        ShardedAggregatingCacheBuilder::new(40)
            .shards(2)
            .group_size(1)
            .build()
            .expect("valid build"),
    );
    let handle = BoundServer::bind("127.0.0.1:0", Arc::clone(&cache))
        .expect("ephemeral bind")
        .with_dedup_capacity(0)
        .spawn();
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    client.fetch_group(&req(7, &[3])).expect("first");
    client
        .fetch_group(&req(7, &[3]))
        .expect("retry re-executes");
    let wire = client.server_stats().expect("stats reply");
    assert_eq!(wire.reply_cache_hits, 0, "no window, no hits");
    assert_eq!(cache.stats().accesses, 2, "no dedup: both fetches executed");
    handle.stop();
}

#[test]
fn batched_fetches_pipeline_on_one_connection() {
    let (handle, cache) = server(100, 2);
    let mut client = NetClient::connect(handle.addr()).expect("connect");

    let batch: Vec<GroupRequest> = (0..20u64).map(|i| req(i, &[i % 7])).collect();
    let replies = client.fetch_batch(&batch);
    assert_eq!(replies.len(), 20);
    for (result, request) in replies.iter().zip(&batch) {
        let reply = result.as_ref().expect("batched fetch");
        assert_eq!(reply.request_id, request.request_id);
        assert_eq!(reply.files.len(), request.files.len());
    }
    assert_eq!(cache.stats().accesses, 20);
    assert_eq!(client.stats().round_trips, 1, "one pipelined round trip");
    handle.stop();
}

#[test]
fn sequential_and_batched_runs_agree_with_direct_execution() {
    // The same access stream three ways: direct in-process, per-request
    // TCP, and batched TCP. All three must leave identical server stats.
    let stream: Vec<u64> = (0..120).map(|i| (i * 7 + i / 11) % 23).collect();

    let run_direct = || {
        let cache = ShardedAggregatingCacheBuilder::new(30)
            .shards(2)
            .group_size(3)
            .build()
            .expect("valid build");
        for &f in &stream {
            cache.handle_access(FileId(f));
        }
        (cache.stats(), cache.group_stats())
    };
    let (direct_stats, direct_group) = run_direct();

    for batch_size in [1usize, 8, 120] {
        let (handle, cache) = server(30, 3);
        let mut client = NetClient::connect(handle.addr()).expect("connect");
        for (chunk_idx, chunk) in stream.chunks(batch_size).enumerate() {
            let batch: Vec<GroupRequest> = chunk
                .iter()
                .enumerate()
                .map(|(i, &f)| req((chunk_idx * batch_size + i) as u64, &[f]))
                .collect();
            for r in client.fetch_batch(&batch) {
                r.expect("batched fetch");
            }
        }
        assert_eq!(cache.stats(), direct_stats, "batch={batch_size}");
        assert_eq!(cache.group_stats(), direct_group, "batch={batch_size}");
        handle.stop();
    }
}

#[test]
fn read_timeout_surfaces_as_retryable_timeout() {
    // A listener that accepts and then never replies.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let silent = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_millis(300));
        drop(stream);
    });

    let mut client = NetClient::connect(&addr)
        .expect("connect")
        .with_timeout(Duration::from_millis(50));
    let err = client
        .fetch_group(&req(0, &[1]))
        .expect_err("no reply ever");
    assert_eq!(err.kind(), TransportErrorKind::Timeout);
    assert!(err.is_retryable());
    silent.join().expect("silent listener thread");
}

#[test]
fn connect_to_nothing_is_connection_lost() {
    // Bind and immediately drop to obtain a port that is (almost surely)
    // closed.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").port()
    };
    let err = NetClient::connect(&format!("127.0.0.1:{port}")).expect_err("nothing listening");
    assert_eq!(err.kind(), TransportErrorKind::ConnectionLost);
}

#[test]
fn shutdown_via_client_stops_the_server() {
    let (handle, _cache) = server(40, 1);
    let addr = handle.addr().to_string();
    let mut client = NetClient::connect(&addr).expect("connect");
    client.fetch_group(&req(0, &[1])).expect("fetch");
    client.send_shutdown().expect("acknowledged");
    handle.stop(); // joins promptly because the flag is already set

    // The port no longer accepts fetches.
    let late = NetClient::connect(&addr);
    assert!(late.is_err(), "server must be gone after shutdown");
}

#[test]
fn pool_survives_many_sequential_clients() {
    let (handle, cache) = server(500, 2);
    for c in 0..4u64 {
        let mut client = NetClient::connect(handle.addr())
            .expect("connect")
            .with_id_namespace(c)
            .with_pool_size(1);
        for i in 0..25u64 {
            let request = client.next_request(vec![FileId(c * 100 + i)]);
            client.fetch_group(&request).expect("fetch");
        }
    }
    assert_eq!(cache.stats().accesses, 100);
    handle.stop();
}

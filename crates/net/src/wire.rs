//! The length-prefixed binary wire protocol for group fetches.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [u32 payload_len] [u8 version] [u8 msg_type] [u64 request_id] [body…]
//! └── little-endian ┴────────────── payload (payload_len bytes) ──────┘
//! ```
//!
//! * `payload_len` counts everything after the 4-byte prefix and is
//!   bounded by [`MAX_FRAME_LEN`] (a malformed or hostile peer cannot make
//!   the reader allocate unboundedly).
//! * `version` is [`WIRE_VERSION`]; a reader rejects frames from any other
//!   version rather than guessing at their layout.
//! * `request_id` appears in **every** message so replies can be matched
//!   to requests and retries deduplicated; see the crate docs on
//!   idempotency.
//!
//! Bodies by message type:
//!
//! | type | message        | body |
//! |------|----------------|------|
//! | 1    | `Fetch`        | `u32 count`, then `count × u64` file ids |
//! | 2    | `FetchReply`   | `u32 count`, then `count × (u64 id, u8 hit=0/miss=1)` |
//! | 3    | `StatsRequest` | empty |
//! | 4    | `StatsReply`   | `10 × u64` counters ([`WireStats`]) |
//! | 5    | `Shutdown`     | empty |
//! | 6    | `ShutdownAck`  | empty |
//! | 7    | `Error`        | `u32 len`, then `len` bytes of UTF-8 |
//! | 8    | `ClusterUpdate` | `u64 epoch`, `u32 count`, then `count × (u64 node, u16 len, len bytes)` |
//! | 9    | `ClusterUpdateAck` | `u64 epoch` |
//! | 10   | `FetchOwned`   | `u32 count`, then `count × u64` file ids |
//!
//! All integers are little-endian. Encoding and decoding are pinned by
//! round-trip and golden byte-layout tests below.
//!
//! # Version history
//!
//! * **v1** — messages 1–7, `StatsReply` carried 9 counters.
//! * **v2** — `StatsReply` gained `reply_cache_hits` (10th counter) and
//!   the cluster messages arrived: `ClusterUpdate`/`ClusterUpdateAck`
//!   (epoch'd membership pushes) and `FetchOwned`, the depth-bounded
//!   cluster proxy frame (the receiver must serve it locally and never
//!   re-forward, which is what keeps proxy chains at depth 1 even under
//!   inconsistent membership views).

use std::io::{Read, Write};

use fgcache_types::{AccessOutcome, FileId, TransportError, TransportErrorKind};

use crate::transport::{FileReply, GroupReply};

/// Current protocol version, the first payload byte of every frame.
/// Version 2 added the cluster messages and the `reply_cache_hits`
/// counter (see the module docs' version history).
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on a frame payload (16 MiB) — far above any real fetch,
/// low enough to reject garbage length prefixes before allocating.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

const MSG_FETCH: u8 = 1;
const MSG_FETCH_REPLY: u8 = 2;
const MSG_STATS_REQUEST: u8 = 3;
const MSG_STATS_REPLY: u8 = 4;
const MSG_SHUTDOWN: u8 = 5;
const MSG_SHUTDOWN_ACK: u8 = 6;
const MSG_ERROR: u8 = 7;
const MSG_CLUSTER_UPDATE: u8 = 8;
const MSG_CLUSTER_UPDATE_ACK: u8 = 9;
const MSG_FETCH_OWNED: u8 = 10;

/// Longest member address accepted in a `ClusterUpdate` (u16 length
/// prefix on the wire).
pub const MAX_MEMBER_ADDR_LEN: usize = u16::MAX as usize;

/// Server-side cache counters carried by a `StatsReply` — the remote
/// analogue of reading `ShardedAggregatingCache::stats` and
/// `group_stats` in process, which is what the differential loopback test
/// compares byte for byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Demand accesses processed.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Files inserted speculatively.
    pub speculative_inserts: u64,
    /// Demand hits on still-speculative entries.
    pub speculative_hits: u64,
    /// Evictions.
    pub evictions: u64,
    /// Demand fetches (group fetches issued upstream).
    pub demand_fetches: u64,
    /// Files transferred by those fetches.
    pub files_transferred: u64,
    /// Group members skipped because already resident.
    pub members_already_resident: u64,
    /// Requests answered from the server's reply cache (idempotent
    /// retries re-served without re-execution). Added in wire v2.
    pub reply_cache_hits: u64,
}

impl WireStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.accesses,
            self.hits,
            self.misses,
            self.speculative_inserts,
            self.speculative_hits,
            self.evictions,
            self.demand_fetches,
            self.files_transferred,
            self.members_already_resident,
            self.reply_cache_hits,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(reader: &mut SliceReader<'_>) -> Result<Self, TransportError> {
        Ok(WireStats {
            accesses: reader.u64()?,
            hits: reader.u64()?,
            misses: reader.u64()?,
            speculative_inserts: reader.u64()?,
            speculative_hits: reader.u64()?,
            evictions: reader.u64()?,
            demand_fetches: reader.u64()?,
            files_transferred: reader.u64()?,
            members_already_resident: reader.u64()?,
            reply_cache_hits: reader.u64()?,
        })
    }
}

/// A decoded protocol message. Every variant carries the frame's request
/// id (see the [module docs](self) for bodies and framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server: fetch this group of files.
    Fetch {
        /// Idempotency key; retries reuse it.
        request_id: u64,
        /// Files to serve, in order.
        files: Vec<FileId>,
    },
    /// Server → client: the group, with per-file provenance.
    FetchReply {
        /// Echo of the request's id.
        request_id: u64,
        /// Per-file outcome, in request order.
        files: Vec<FileReply>,
    },
    /// Client → server: report your cache counters.
    StatsRequest {
        /// Id echoed in the `StatsReply`.
        request_id: u64,
    },
    /// Server → client: cache counters.
    StatsReply {
        /// Echo of the request's id.
        request_id: u64,
        /// The counters.
        stats: WireStats,
    },
    /// Client → server: finish in-flight work and stop accepting.
    Shutdown {
        /// Id echoed in the `ShutdownAck`.
        request_id: u64,
    },
    /// Server → client: shutdown acknowledged.
    ShutdownAck {
        /// Echo of the request's id.
        request_id: u64,
    },
    /// Either direction: the peer could not serve the request.
    Error {
        /// Id of the offending request (0 if unattributable).
        request_id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Admin → node: replace your membership view (wire v2). Stale
    /// epochs must be ignored by the receiver.
    ClusterUpdate {
        /// Id echoed in the `ClusterUpdateAck`.
        request_id: u64,
        /// Monotonic view epoch; the receiver keeps the highest seen.
        epoch: u64,
        /// The full member list: `(node id, host:port)` per node.
        members: Vec<(u64, String)>,
    },
    /// Node → admin: membership view acknowledged (wire v2).
    ClusterUpdateAck {
        /// Echo of the request's id.
        request_id: u64,
        /// The epoch the node now holds (its current view if the update
        /// was stale).
        epoch: u64,
    },
    /// Peer → owner: fetch this group and serve it **locally** — the
    /// depth-bounded cluster proxy frame (wire v2). The receiver must
    /// never re-forward it, even if its own view disagrees about
    /// ownership.
    FetchOwned {
        /// Idempotency key; retries reuse it.
        request_id: u64,
        /// Files to serve, in order.
        files: Vec<FileId>,
    },
}

impl Message {
    /// The request id carried by this message.
    pub fn request_id(&self) -> u64 {
        match *self {
            Message::Fetch { request_id, .. }
            | Message::FetchReply { request_id, .. }
            | Message::StatsRequest { request_id }
            | Message::StatsReply { request_id, .. }
            | Message::Shutdown { request_id }
            | Message::ShutdownAck { request_id }
            | Message::Error { request_id, .. }
            | Message::ClusterUpdate { request_id, .. }
            | Message::ClusterUpdateAck { request_id, .. }
            | Message::FetchOwned { request_id, .. } => request_id,
        }
    }

    /// Builds the `FetchReply` for a served group.
    pub fn reply_for(reply: &GroupReply) -> Message {
        Message::FetchReply {
            request_id: reply.request_id,
            files: reply.files.clone(),
        }
    }

    /// Encodes this message as one complete frame (length prefix
    /// included).
    pub fn encode(&self) -> Vec<u8> {
        let mut frame = Vec::with_capacity(32);
        self.encode_into(&mut frame);
        frame
    }

    /// Encodes this message as one complete frame into a reused buffer.
    ///
    /// The buffer is cleared first, so repeated calls with the same
    /// buffer are allocation-free once its capacity has warmed up — the
    /// event-driven server leans on this for its per-frame steady state.
    /// Byte-for-byte identical to [`Message::encode`] (pinned by a test).
    pub fn encode_into(&self, frame: &mut Vec<u8>) {
        frame.clear();
        // Length prefix placeholder, patched once the payload is known.
        frame.extend_from_slice(&[0u8; 4]);
        frame.push(WIRE_VERSION);
        frame.push(self.msg_type());
        frame.extend_from_slice(&self.request_id().to_le_bytes());
        match self {
            Message::Fetch { files, .. } | Message::FetchOwned { files, .. } => {
                frame.extend_from_slice(&(files.len() as u32).to_le_bytes());
                for f in files {
                    frame.extend_from_slice(&f.as_u64().to_le_bytes());
                }
            }
            Message::FetchReply { files, .. } => {
                frame.extend_from_slice(&(files.len() as u32).to_le_bytes());
                for f in files {
                    frame.extend_from_slice(&f.file.as_u64().to_le_bytes());
                    frame.push(if f.outcome.is_hit() { 0 } else { 1 });
                }
            }
            Message::StatsReply { stats, .. } => stats.encode_into(frame),
            Message::Error { message, .. } => {
                frame.extend_from_slice(&(message.len() as u32).to_le_bytes());
                frame.extend_from_slice(message.as_bytes());
            }
            Message::ClusterUpdate { epoch, members, .. } => {
                frame.extend_from_slice(&epoch.to_le_bytes());
                frame.extend_from_slice(&(members.len() as u32).to_le_bytes());
                for (node, addr) in members {
                    frame.extend_from_slice(&node.to_le_bytes());
                    let len = addr.len().min(MAX_MEMBER_ADDR_LEN) as u16;
                    frame.extend_from_slice(&len.to_le_bytes());
                    frame.extend_from_slice(&addr.as_bytes()[..len as usize]);
                }
            }
            Message::ClusterUpdateAck { epoch, .. } => {
                frame.extend_from_slice(&epoch.to_le_bytes());
            }
            Message::StatsRequest { .. }
            | Message::Shutdown { .. }
            | Message::ShutdownAck { .. } => {}
        }
        let payload_len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// Decodes one frame payload (everything after the length prefix).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportErrorKind::Protocol`] error for truncated
    /// bodies, unknown versions or message types, and invalid field
    /// values.
    pub fn decode(payload: &[u8]) -> Result<Message, TransportError> {
        let mut r = SliceReader::new(payload);
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(protocol(format!(
                "unsupported wire version {version} (expected {WIRE_VERSION})"
            )));
        }
        let msg_type = r.u8()?;
        let request_id = r.u64()?;
        let message = match msg_type {
            MSG_FETCH | MSG_FETCH_OWNED => {
                let count = r.u32()? as usize;
                r.check_remaining(count.checked_mul(8), "fetch file list")?;
                let files = (0..count)
                    .map(|_| r.u64().map(FileId))
                    .collect::<Result<Vec<_>, _>>()?;
                if msg_type == MSG_FETCH_OWNED {
                    Message::FetchOwned { request_id, files }
                } else {
                    Message::Fetch { request_id, files }
                }
            }
            MSG_FETCH_REPLY => {
                let count = r.u32()? as usize;
                r.check_remaining(count.checked_mul(9), "fetch reply list")?;
                let files = (0..count)
                    .map(|_| {
                        let file = FileId(r.u64()?);
                        let outcome = match r.u8()? {
                            0 => AccessOutcome::Hit,
                            1 => AccessOutcome::Miss,
                            other => {
                                return Err(protocol(format!("invalid provenance byte {other}")))
                            }
                        };
                        Ok(FileReply { file, outcome })
                    })
                    .collect::<Result<Vec<_>, TransportError>>()?;
                Message::FetchReply { request_id, files }
            }
            MSG_STATS_REQUEST => Message::StatsRequest { request_id },
            MSG_STATS_REPLY => Message::StatsReply {
                request_id,
                stats: WireStats::decode(&mut r)?,
            },
            MSG_SHUTDOWN => Message::Shutdown { request_id },
            MSG_SHUTDOWN_ACK => Message::ShutdownAck { request_id },
            MSG_ERROR => {
                let len = r.u32()? as usize;
                let bytes = r.bytes(len, "error message")?;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| protocol("error message is not UTF-8"))?;
                Message::Error {
                    request_id,
                    message,
                }
            }
            MSG_CLUSTER_UPDATE => {
                let epoch = r.u64()?;
                let count = r.u32()? as usize;
                // Each member needs at least 10 bytes (u64 id + u16 len).
                r.check_remaining(count.checked_mul(10), "cluster member list")?;
                let members = (0..count)
                    .map(|_| {
                        let node = r.u64()?;
                        let len = u16::from_le_bytes([r.u8()?, r.u8()?]) as usize;
                        let bytes = r.bytes(len, "member address")?;
                        let addr = String::from_utf8(bytes.to_vec())
                            .map_err(|_| protocol("member address is not UTF-8"))?;
                        Ok((node, addr))
                    })
                    .collect::<Result<Vec<_>, TransportError>>()?;
                Message::ClusterUpdate {
                    request_id,
                    epoch,
                    members,
                }
            }
            MSG_CLUSTER_UPDATE_ACK => Message::ClusterUpdateAck {
                request_id,
                epoch: r.u64()?,
            },
            other => return Err(protocol(format!("unknown message type {other}"))),
        };
        if !r.is_empty() {
            return Err(protocol("trailing bytes after message body"));
        }
        Ok(message)
    }

    fn msg_type(&self) -> u8 {
        match self {
            Message::Fetch { .. } => MSG_FETCH,
            Message::FetchReply { .. } => MSG_FETCH_REPLY,
            Message::StatsRequest { .. } => MSG_STATS_REQUEST,
            Message::StatsReply { .. } => MSG_STATS_REPLY,
            Message::Shutdown { .. } => MSG_SHUTDOWN,
            Message::ShutdownAck { .. } => MSG_SHUTDOWN_ACK,
            Message::Error { .. } => MSG_ERROR,
            Message::ClusterUpdate { .. } => MSG_CLUSTER_UPDATE,
            Message::ClusterUpdateAck { .. } => MSG_CLUSTER_UPDATE_ACK,
            Message::FetchOwned { .. } => MSG_FETCH_OWNED,
        }
    }
}

/// Header of a fetch frame decoded by [`decode_fetch_into`]: everything
/// but the file list, which lands in the caller's reused buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchFrame {
    /// Idempotency key carried by the frame.
    pub request_id: u64,
    /// `true` for the depth-bounded `FetchOwned` proxy frame.
    pub owned: bool,
}

/// Decodes a `Fetch`/`FetchOwned` payload into a reused file buffer —
/// the event-driven server's allocation-free hot path for inbound
/// frames. `files` is cleared and refilled; once its capacity covers the
/// largest group seen, repeated calls allocate nothing.
///
/// Returns `Ok(None)` (with `files` left cleared) when the payload is a
/// well-framed message of any *other* type, so callers can fall back to
/// [`Message::decode`] for the cold paths.
///
/// # Errors
///
/// Returns a [`TransportErrorKind::Protocol`] error on the same inputs
/// [`Message::decode`] rejects: wrong version, truncated body, a
/// declared count overrunning the frame, or trailing bytes.
pub fn decode_fetch_into(
    payload: &[u8],
    files: &mut Vec<FileId>,
) -> Result<Option<FetchFrame>, TransportError> {
    files.clear();
    let mut r = SliceReader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(protocol(format!(
            "unsupported wire version {version} (expected {WIRE_VERSION})"
        )));
    }
    let msg_type = r.u8()?;
    if msg_type != MSG_FETCH && msg_type != MSG_FETCH_OWNED {
        return Ok(None);
    }
    let request_id = r.u64()?;
    let count = r.u32()? as usize;
    r.check_remaining(count.checked_mul(8), "fetch file list")?;
    files.reserve(count);
    for _ in 0..count {
        files.push(FileId(r.u64()?));
    }
    if !r.is_empty() {
        return Err(protocol("trailing bytes after message body"));
    }
    Ok(Some(FetchFrame {
        request_id,
        owned: msg_type == MSG_FETCH_OWNED,
    }))
}

/// Writes one message as a frame to `w` (single `write_all` so a frame is
/// never interleaved mid-write by the caller's own buffering).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, message: &Message) -> std::io::Result<()> {
    w.write_all(&message.encode())
}

/// Reads one complete frame from `r` and decodes it.
///
/// # Errors
///
/// Returns a [`TransportError`]: `Protocol` for malformed frames,
/// `ConnectionLost` for EOF mid-frame, `Timeout` if the reader's deadline
/// expires.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Message, TransportError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf).map_err(io_to_transport)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(protocol(format!(
            "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(io_to_transport)?;
    Message::decode(&payload)
}

/// Maps an I/O error to the transport-error taxonomy: would-block and
/// timed-out become retryable [`TransportErrorKind::Timeout`]s, invalid
/// data becomes [`TransportErrorKind::Protocol`], and everything else
/// (EOF included) is a [`TransportErrorKind::ConnectionLost`].
pub fn io_to_transport(err: std::io::Error) -> TransportError {
    use std::io::ErrorKind as K;
    let kind = match err.kind() {
        K::WouldBlock | K::TimedOut => TransportErrorKind::Timeout,
        K::InvalidData => TransportErrorKind::Protocol,
        _ => TransportErrorKind::ConnectionLost,
    };
    TransportError::new(kind, err.to_string())
}

fn protocol(detail: impl Into<String>) -> TransportError {
    TransportError::new(TransportErrorKind::Protocol, detail)
}

/// A bounds-checked little-endian cursor over a frame payload.
struct SliceReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        SliceReader { data, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.data.len()
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], TransportError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| protocol(format!("truncated frame: {what}")))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Rejects a declared element count larger than the remaining bytes
    /// *before* any allocation sized by it.
    fn check_remaining(&self, need: Option<usize>, what: &str) -> Result<(), TransportError> {
        match need {
            Some(n) if n <= self.data.len() - self.pos => Ok(()),
            _ => Err(protocol(format!("declared size overruns frame: {what}"))),
        }
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.bytes(1, "u8")?[0])
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        let b = self.bytes(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TransportError> {
        let b = self.bytes(8, "u64")?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let frame = m.encode();
        let (len, payload) = frame.split_at(4);
        assert_eq!(
            u32::from_le_bytes([len[0], len[1], len[2], len[3]]) as usize,
            payload.len()
        );
        assert_eq!(Message::decode(payload).expect("well-formed"), m);
    }

    #[test]
    fn all_message_types_roundtrip() {
        roundtrip(Message::Fetch {
            request_id: 0xDEAD_BEEF,
            files: vec![FileId(1), FileId(u64::MAX)],
        });
        roundtrip(Message::FetchReply {
            request_id: 2,
            files: vec![
                FileReply {
                    file: FileId(9),
                    outcome: AccessOutcome::Hit,
                },
                FileReply {
                    file: FileId(10),
                    outcome: AccessOutcome::Miss,
                },
            ],
        });
        roundtrip(Message::StatsRequest { request_id: 3 });
        roundtrip(Message::StatsReply {
            request_id: 4,
            stats: WireStats {
                accesses: 1,
                hits: 2,
                misses: 3,
                speculative_inserts: 4,
                speculative_hits: 5,
                evictions: 6,
                demand_fetches: 7,
                files_transferred: 8,
                members_already_resident: 9,
                reply_cache_hits: 10,
            },
        });
        roundtrip(Message::Shutdown { request_id: 5 });
        roundtrip(Message::ShutdownAck { request_id: 6 });
        roundtrip(Message::Error {
            request_id: 7,
            message: "no such thing".to_string(),
        });
        roundtrip(Message::ClusterUpdate {
            request_id: 8,
            epoch: 3,
            members: vec![
                (1, "127.0.0.1:7001".to_string()),
                (2, "127.0.0.1:7002".to_string()),
            ],
        });
        roundtrip(Message::ClusterUpdate {
            request_id: 9,
            epoch: 0,
            members: Vec::new(),
        });
        roundtrip(Message::ClusterUpdateAck {
            request_id: 10,
            epoch: 3,
        });
        roundtrip(Message::FetchOwned {
            request_id: 11,
            files: vec![FileId(42)],
        });
    }

    #[test]
    fn golden_fetch_frame_layout() {
        // Pins the wire layout: changing it is a protocol version bump.
        let m = Message::Fetch {
            request_id: 0x0102_0304_0506_0708,
            files: vec![FileId(0x11), FileId(0x22)],
        };
        let frame = m.encode();
        let expected: Vec<u8> = [
            &[30, 0, 0, 0][..],               // payload length
            &[2, 1][..],                      // version, msg type
            &[8, 7, 6, 5, 4, 3, 2, 1][..],    // request id LE
            &[2, 0, 0, 0][..],                // file count
            &[0x11, 0, 0, 0, 0, 0, 0, 0][..], // file 0
            &[0x22, 0, 0, 0, 0, 0, 0, 0][..], // file 1
        ]
        .concat();
        assert_eq!(frame, expected);
    }

    #[test]
    fn golden_cluster_update_frame_layout() {
        // Pins the v2 membership frame: changing it is a version bump.
        let m = Message::ClusterUpdate {
            request_id: 1,
            epoch: 2,
            members: vec![(7, "a:1".to_string())],
        };
        let frame = m.encode();
        let expected: Vec<u8> = [
            &[35, 0, 0, 0][..],            // payload length
            &[2, 8][..],                   // version, msg type
            &[1, 0, 0, 0, 0, 0, 0, 0][..], // request id LE
            &[2, 0, 0, 0, 0, 0, 0, 0][..], // epoch LE
            &[1, 0, 0, 0][..],             // member count
            &[7, 0, 0, 0, 0, 0, 0, 0][..], // node id LE
            &[3, 0][..],                   // addr length
            b"a:1",                        // addr bytes
        ]
        .concat();
        assert_eq!(frame, expected);
    }

    #[test]
    fn rejects_wrong_version_and_unknown_type() {
        let mut frame = Message::StatsRequest { request_id: 1 }.encode();
        frame[4] = 9; // version byte
        let err = Message::decode(&frame[4..]).expect_err("bad version");
        assert_eq!(err.kind(), TransportErrorKind::Protocol);
        assert!(err.to_string().contains("version"));

        let mut frame = Message::StatsRequest { request_id: 1 }.encode();
        frame[5] = 200; // msg type byte
        let err = Message::decode(&frame[4..]).expect_err("bad type");
        assert_eq!(err.kind(), TransportErrorKind::Protocol);
    }

    #[test]
    fn rejects_truncated_and_oversized_bodies() {
        let frame = Message::Fetch {
            request_id: 1,
            files: vec![FileId(1)],
        }
        .encode();
        let payload = &frame[4..];
        assert!(Message::decode(&payload[..payload.len() - 1]).is_err());

        // A declared count far beyond the actual body must fail before
        // allocating.
        let mut huge = payload.to_vec();
        huge[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::decode(&huge).is_err());

        // Trailing garbage is also a protocol error.
        let mut trailing = payload.to_vec();
        trailing.push(0);
        assert!(Message::decode(&trailing).is_err());

        // A cluster update declaring far more members than the body
        // holds must fail before allocating.
        let frame = Message::ClusterUpdate {
            request_id: 1,
            epoch: 1,
            members: vec![(1, "x:1".to_string())],
        }
        .encode();
        let mut huge = frame[4..].to_vec();
        huge[18..22].copy_from_slice(&u32::MAX.to_le_bytes()); // member count
        assert!(Message::decode(&huge).is_err());
    }

    #[test]
    fn rejects_invalid_provenance_byte() {
        let mut frame = Message::FetchReply {
            request_id: 1,
            files: vec![FileReply {
                file: FileId(1),
                outcome: AccessOutcome::Hit,
            }],
        }
        .encode();
        let last = frame.len() - 1;
        frame[last] = 7;
        assert!(Message::decode(&frame[4..]).is_err());
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let messages = [
            Message::Fetch {
                request_id: 1,
                files: vec![FileId(4)],
            },
            Message::Shutdown { request_id: 2 },
        ];
        let mut buf = Vec::new();
        for m in &messages {
            write_frame(&mut buf, m).expect("vec write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &messages {
            assert_eq!(&read_frame(&mut cursor).expect("well-formed"), m);
        }
        // EOF at a frame boundary surfaces as ConnectionLost.
        let err = read_frame(&mut cursor).expect_err("eof");
        assert_eq!(err.kind(), TransportErrorKind::ConnectionLost);
    }

    #[test]
    fn read_frame_rejects_oversized_length_prefix() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(buf)).expect_err("too big");
        assert_eq!(err.kind(), TransportErrorKind::Protocol);
    }

    #[test]
    fn encode_into_matches_encode_for_every_message_type() {
        let samples = [
            Message::Fetch {
                request_id: 1,
                files: vec![FileId(1), FileId(2)],
            },
            Message::FetchOwned {
                request_id: 2,
                files: vec![FileId(3)],
            },
            Message::FetchReply {
                request_id: 3,
                files: vec![FileReply {
                    file: FileId(4),
                    outcome: AccessOutcome::Miss,
                }],
            },
            Message::StatsRequest { request_id: 4 },
            Message::StatsReply {
                request_id: 5,
                stats: WireStats::default(),
            },
            Message::Shutdown { request_id: 6 },
            Message::ShutdownAck { request_id: 7 },
            Message::Error {
                request_id: 8,
                message: "nope".to_string(),
            },
            Message::ClusterUpdate {
                request_id: 9,
                epoch: 2,
                members: vec![(1, "a:1".to_string())],
            },
            Message::ClusterUpdateAck {
                request_id: 10,
                epoch: 2,
            },
        ];
        // One reused buffer across all messages: encode_into must clear
        // stale contents and produce bytes identical to encode().
        let mut scratch = Vec::new();
        for m in &samples {
            m.encode_into(&mut scratch);
            assert_eq!(scratch, m.encode(), "{m:?}");
        }
    }

    #[test]
    fn decode_fetch_into_agrees_with_full_decode() {
        let mut files = Vec::new();
        for m in [
            Message::Fetch {
                request_id: 7,
                files: vec![FileId(1), FileId(99)],
            },
            Message::FetchOwned {
                request_id: 8,
                files: vec![FileId(5)],
            },
            Message::Fetch {
                request_id: 9,
                files: Vec::new(),
            },
        ] {
            let frame = m.encode();
            let header = decode_fetch_into(&frame[4..], &mut files)
                .expect("well-formed")
                .expect("a fetch frame");
            match Message::decode(&frame[4..]).expect("well-formed") {
                Message::Fetch {
                    request_id,
                    files: want,
                } => {
                    assert_eq!(
                        header,
                        FetchFrame {
                            request_id,
                            owned: false
                        }
                    );
                    assert_eq!(files, want);
                }
                Message::FetchOwned {
                    request_id,
                    files: want,
                } => {
                    assert_eq!(
                        header,
                        FetchFrame {
                            request_id,
                            owned: true
                        }
                    );
                    assert_eq!(files, want);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn decode_fetch_into_passes_on_other_types_and_rejects_garbage() {
        let mut files = vec![FileId(123)];
        let frame = Message::StatsRequest { request_id: 1 }.encode();
        assert_eq!(
            decode_fetch_into(&frame[4..], &mut files).expect("well-formed"),
            None
        );
        assert!(files.is_empty(), "scratch cleared even on a pass");

        // Same malformed inputs Message::decode rejects.
        let frame = Message::Fetch {
            request_id: 1,
            files: vec![FileId(1)],
        }
        .encode();
        let payload = &frame[4..];
        assert!(decode_fetch_into(&payload[..payload.len() - 1], &mut files).is_err());
        let mut huge = payload.to_vec();
        huge[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_fetch_into(&huge, &mut files).is_err());
        let mut wrong_version = payload.to_vec();
        wrong_version[0] = 9;
        assert!(decode_fetch_into(&wrong_version, &mut files).is_err());
        let mut trailing = payload.to_vec();
        trailing.push(0);
        assert!(decode_fetch_into(&trailing, &mut files).is_err());
    }

    #[test]
    fn io_error_taxonomy() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            io_to_transport(Error::new(ErrorKind::TimedOut, "t")).kind(),
            TransportErrorKind::Timeout
        );
        assert_eq!(
            io_to_transport(Error::new(ErrorKind::WouldBlock, "w")).kind(),
            TransportErrorKind::Timeout
        );
        assert_eq!(
            io_to_transport(Error::new(ErrorKind::InvalidData, "d")).kind(),
            TransportErrorKind::Protocol
        );
        assert_eq!(
            io_to_transport(Error::new(ErrorKind::ConnectionReset, "r")).kind(),
            TransportErrorKind::ConnectionLost
        );
    }
}

//! Mobile file hoarding (the Seer line of work, paper §5/§6).
//!
//! Before disconnecting, a mobile client fills a bounded *hoard* with the
//! files it expects to need. The paper suggests its grouping model should
//! improve hoarding; this module makes that testable:
//!
//! * [`frequency_hoard`] — the classic baseline: the `budget` most
//!   frequently accessed files.
//! * [`recency_hoard`] — the `budget` most recently accessed files.
//! * [`group_hoard`] — greedy group closure: walk files by recency (the
//!   paper's likelihood estimator) and admit each seed *together with its
//!   transitive-successor chain*, so working sets enter whole even when
//!   only partially re-touched before disconnecting.
//!
//! [`evaluate`] scores a hoard against a disconnected-period trace: the
//! hoard *hit rate* is the fraction of accesses that the hoard satisfies.

use std::collections::HashSet;

use fgcache_successor::RelationshipGraph;
use fgcache_trace::Trace;
use fgcache_types::FileId;

/// A bounded set of hoarded files.
#[derive(Debug, Clone, Default)]
pub struct Hoard {
    files: HashSet<FileId>,
}

impl Hoard {
    /// Creates a hoard from the given files (deduplicated).
    pub fn new(files: impl IntoIterator<Item = FileId>) -> Self {
        Hoard {
            files: files.into_iter().collect(),
        }
    }

    /// Returns `true` if `file` is hoarded.
    pub fn contains(&self, file: FileId) -> bool {
        self.files.contains(&file)
    }

    /// Number of hoarded files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` if the hoard is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

fn ranked_by_frequency(history: &Trace) -> Vec<FileId> {
    let mut counts: std::collections::HashMap<FileId, u64> = std::collections::HashMap::new();
    for f in history.files() {
        *counts.entry(f).or_insert(0) += 1;
    }
    let mut files: Vec<FileId> = counts.keys().copied().collect();
    files.sort_by_key(|f| (std::cmp::Reverse(counts[f]), *f));
    files
}

/// The `budget` most frequently accessed files of the history.
pub fn frequency_hoard(history: &Trace, budget: usize) -> Hoard {
    Hoard::new(ranked_by_frequency(history).into_iter().take(budget))
}

/// The `budget` most recently accessed distinct files of the history.
pub fn recency_hoard(history: &Trace, budget: usize) -> Hoard {
    let mut seen = HashSet::new();
    let mut picked = Vec::new();
    for f in history.file_sequence().into_iter().rev() {
        if picked.len() >= budget {
            break;
        }
        if seen.insert(f) {
            picked.push(f);
        }
    }
    Hoard::new(picked)
}

/// Greedy group-closure hoarding: admit files in **recency** order (the
/// paper's estimator of future access), each bringing its
/// `group_size − 1` strongest relationship-graph successors, until the
/// budget is exhausted. The closure pulls in related files the user has
/// not re-touched recently but will need once the working set resumes.
pub fn group_hoard(history: &Trace, budget: usize, group_size: usize) -> Hoard {
    let mut graph = RelationshipGraph::new();
    graph.record_sequence(history.files());
    let mut seeds: Vec<FileId> = Vec::new();
    let mut seen = HashSet::new();
    for f in history.file_sequence().into_iter().rev() {
        if seen.insert(f) {
            seeds.push(f);
        }
    }
    let mut picked: Vec<FileId> = Vec::new();
    let mut in_hoard = HashSet::new();
    for f in seeds {
        if picked.len() >= budget {
            break;
        }
        if in_hoard.insert(f) {
            picked.push(f);
        }
        // Transitive-successor chain from the seed (paper §3): follow the
        // strongest not-yet-hoarded successor, up to group_size − 1 files.
        let mut current = f;
        for _ in 0..group_size.saturating_sub(1) {
            if picked.len() >= budget {
                break;
            }
            let next = graph
                .successors_ranked(current)
                .into_iter()
                .map(|(succ, _)| succ)
                .find(|succ| !in_hoard.contains(succ));
            match next {
                Some(succ) => {
                    in_hoard.insert(succ);
                    picked.push(succ);
                    current = succ;
                }
                None => break,
            }
        }
    }
    Hoard::new(picked)
}

/// Result of replaying a disconnected period against a hoard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoardReport {
    /// Accesses during the disconnected period.
    pub accesses: u64,
    /// Accesses satisfied by the hoard.
    pub hits: u64,
}

impl HoardReport {
    /// Fraction of disconnected accesses the hoard satisfied.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Scores `hoard` against the disconnected-period trace.
pub fn evaluate(hoard: &Hoard, disconnected: &Trace) -> HoardReport {
    let hits = disconnected.files().filter(|f| hoard.contains(*f)).count() as u64;
    HoardReport {
        accesses: disconnected.len() as u64,
        hits,
    }
}

/// Splits a trace into a history prefix and a disconnected-period suffix
/// at the given fraction (clamped to `[0, 1]`).
pub fn split_at_fraction(trace: &Trace, fraction: f64) -> (Trace, Trace) {
    let fraction = fraction.clamp(0.0, 1.0);
    let cut = (trace.len() as f64 * fraction) as usize;
    let history: Trace = trace.events().iter().take(cut).copied().collect();
    let future: Trace = trace.events().iter().skip(cut).copied().collect();
    (history, future)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> Trace {
        // Working set {1,2,3} accessed in lockstep, hot singleton 9.
        Trace::from_files(
            (0..30)
                .flat_map(|_| [1u64, 2, 3])
                .chain(std::iter::repeat_n(9u64, 40))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn frequency_hoard_picks_hottest() {
        let h = frequency_hoard(&history(), 2);
        assert!(h.contains(FileId(9)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn recency_hoard_picks_most_recent() {
        let h = recency_hoard(&history(), 1);
        assert!(h.contains(FileId(9)));
        let h = recency_hoard(&Trace::from_files([1, 2, 3]), 2);
        assert!(h.contains(FileId(3)) && h.contains(FileId(2)));
    }

    #[test]
    fn group_hoard_admits_whole_working_sets() {
        let h = group_hoard(&history(), 4, 3);
        // 9 is hottest, but 1/2/3 enter together via group closure.
        assert!(h.contains(FileId(9)));
        assert!(h.contains(FileId(1)));
        assert!(h.contains(FileId(2)));
        assert!(h.contains(FileId(3)));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn budget_respected() {
        for budget in [0usize, 1, 2, 3, 10] {
            assert!(frequency_hoard(&history(), budget).len() <= budget);
            assert!(recency_hoard(&history(), budget).len() <= budget);
            assert!(group_hoard(&history(), budget, 3).len() <= budget);
        }
    }

    #[test]
    fn evaluate_counts_hits() {
        let hoard = Hoard::new([FileId(1), FileId(2)]);
        let future = Trace::from_files([1, 2, 3, 1]);
        let r = evaluate(&hoard, &future);
        assert_eq!(r.hits, 3);
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let empty = Hoard::default();
        assert!(empty.is_empty());
        let r = evaluate(&empty, &Trace::default());
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn split_fraction_partitions() {
        let t = Trace::from_files(0..10u64);
        let (a, b) = split_at_fraction(&t, 0.3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 7);
        let (a, b) = split_at_fraction(&t, 2.0); // clamped
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn group_closure_completes_interrupted_working_sets() {
        // The user ran activity [1..6] many times, browsed some one-shot
        // junk, then re-opened just the first two files before
        // disconnecting. The future replays the whole activity.
        let mut ids: Vec<u64> = Vec::new();
        for _ in 0..20 {
            ids.extend(1..=6u64);
        }
        ids.extend(100..130u64); // one-shot junk, most recent
        ids.extend([1u64, 2]); // interrupted re-run
        let history = Trace::from_files(ids);
        let future = Trace::from_files((0..10).flat_map(|_| 1..=6u64).collect::<Vec<_>>());
        let budget = 8;
        let by_recency = evaluate(&recency_hoard(&history, budget), &future);
        let by_group = evaluate(&group_hoard(&history, budget, 6), &future);
        // Recency hoards the junk; group closure chains 1→2→…→6.
        assert!(
            by_group.hit_rate() > by_recency.hit_rate(),
            "group {} vs recency {}",
            by_group.hit_rate(),
            by_recency.hit_rate()
        );
        assert!(by_group.hit_rate() > 0.9);
    }

    #[test]
    fn group_closure_survives_working_set_drift() {
        // An old hot set [1..5] died; a new set [10..14] is warm but each
        // file was touched few times. Frequency clings to the dead set;
        // recency-seeded closure hoards the live one.
        let mut ids: Vec<u64> = Vec::new();
        for _ in 0..50 {
            ids.extend(1..=5u64);
        }
        for _ in 0..3 {
            ids.extend(10..=14u64);
        }
        let history = Trace::from_files(ids);
        let future = Trace::from_files((0..10).flat_map(|_| 10..=14u64).collect::<Vec<_>>());
        let budget = 5;
        let by_freq = evaluate(&frequency_hoard(&history, budget), &future);
        let by_group = evaluate(&group_hoard(&history, budget, 5), &future);
        assert!(
            by_group.hit_rate() > by_freq.hit_rate(),
            "group {} vs freq {}",
            by_group.hit_rate(),
            by_freq.hit_rate()
        );
        assert!((by_group.hit_rate() - 1.0).abs() < 1e-9);
    }
}

//! A real TCP group-fetch server over any [`ServeBackend`].
//!
//! [`BoundServer::bind`] takes an address (use port 0 for an ephemeral
//! loopback port) and a shared [`ShardedAggregatingCache`];
//! [`BoundServer::bind_backend`] accepts any [`ServeBackend`] (a cluster
//! node, for instance). [`BoundServer::run`] then accepts connections and
//! serves the [wire protocol](crate::wire) until asked to stop. Each
//! connection gets its own scoped thread (`std::thread::scope`), so
//! handler lifetimes are tied to the accept loop and no connection can
//! outlive the server.
//!
//! # Exactly-once fetches
//!
//! All connections share one [`ReplyCache`] behind a mutex, and a fetch
//! executes *while holding it*: a retry racing its original request —
//! possibly on a different pooled connection — either finds the
//! remembered reply or blocks until the original finishes, never
//! double-executing. This serialises fetch execution, which is the honest
//! trade for a correctness-first reproduction (and costs nothing on the
//! single-core hosts the benchmarks run on; the cache's own shard locks
//! would serialise most of the work anyway).
//!
//! # Shutdown
//!
//! Stopping is cooperative: a client sends `Shutdown` (or the owner calls
//! [`ServerHandle::stop`]), which sets a shared flag and pokes the
//! listener with a throwaway connection so the blocking `accept` wakes
//! up. Handler threads poll the flag between read attempts (connections
//! use a short read timeout), so the whole scope drains within one poll
//! interval.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use fgcache_core::ShardedAggregatingCache;
use fgcache_types::FileId;

use crate::dedup::{ReplyCache, DEFAULT_REPLY_CACHE_CAPACITY};
use crate::transport::{FileReply, GroupReply};
use crate::wire::{write_frame, Message, WireStats, MAX_FRAME_LEN};

/// How often an idle connection re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// What a [`BoundServer`] serves fetches from: a plain cache or anything
/// cache-shaped (a cluster node that routes to peers, say). The server
/// owns framing, connection handling, retry deduplication and shutdown;
/// the backend owns what a fetch *means*.
pub trait ServeBackend: Send + Sync {
    /// Serves one group fetch, returning per-file provenance.
    fn serve_group(&self, request_id: u64, files: &[FileId]) -> GroupReply;

    /// Serves one *owned* group fetch — the depth-bounded cluster proxy
    /// frame, which the backend must answer locally and never forward
    /// onward. The default treats it like any other fetch, which is
    /// correct for backends with no notion of ownership.
    fn serve_owned(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        self.serve_group(request_id, files)
    }

    /// This backend's cache counters, for `StatsReply` (the server adds
    /// its own reply-cache hits on top).
    fn wire_stats(&self) -> WireStats;

    /// Applies a pushed membership view, returning the epoch the backend
    /// now holds (its current one if `epoch` was stale).
    ///
    /// # Errors
    ///
    /// The default rejects the update: a plain cache has no membership.
    fn apply_cluster_update(&self, epoch: u64, members: &[(u64, String)]) -> Result<u64, String> {
        let _ = (epoch, members);
        Err("this server is not a cluster node".to_string())
    }

    /// Whether the server must hold its reply cache across execution to
    /// make fetches exactly-once (the default). Backends that deduplicate
    /// internally — a cluster node, whose fetches may block on a *peer's*
    /// server — return `false`, so a fetch executes outside the
    /// server-wide lock: two nodes proxying to each other would otherwise
    /// deadlock, each holding its own reply cache while waiting on the
    /// other's.
    fn serializes_execution(&self) -> bool {
        true
    }
}

impl ServeBackend for ShardedAggregatingCache {
    fn serve_group(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        let files: Vec<FileReply> = files
            .iter()
            .map(|&file| FileReply {
                file,
                outcome: self.handle_access(file),
            })
            .collect();
        GroupReply { request_id, files }
    }

    fn wire_stats(&self) -> WireStats {
        let stats = self.stats();
        let group = self.group_stats();
        WireStats {
            accesses: stats.accesses,
            hits: stats.hits,
            misses: stats.misses,
            speculative_inserts: stats.speculative_inserts,
            speculative_hits: stats.speculative_hits,
            evictions: stats.evictions,
            demand_fetches: group.demand_fetches,
            files_transferred: group.files_transferred,
            members_already_resident: group.members_already_resident,
            reply_cache_hits: 0,
        }
    }
}

/// A TCP group-fetch server bound to an address but not yet running.
pub struct BoundServer {
    listener: TcpListener,
    backend: Arc<dyn ServeBackend>,
    shutdown: Arc<AtomicBool>,
    dedup_capacity: usize,
}

impl std::fmt::Debug for BoundServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundServer")
            .field("addr", &self.local_addr())
            .field("dedup_capacity", &self.dedup_capacity)
            .finish_non_exhaustive()
    }
}

impl BoundServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port), serving fetches from `cache`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cache: Arc<ShardedAggregatingCache>) -> std::io::Result<Self> {
        Self::bind_backend(addr, cache)
    }

    /// Binds to `addr`, serving fetches from an arbitrary
    /// [`ServeBackend`] (e.g. a cluster node).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_backend(
        addr: &str,
        backend: Arc<impl ServeBackend + 'static>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(BoundServer {
            listener,
            backend,
            shutdown: Arc::new(AtomicBool::new(false)),
            dedup_capacity: DEFAULT_REPLY_CACHE_CAPACITY,
        })
    }

    /// Overrides the reply-cache window (see
    /// [`ReplyCache`]); 0 disables retry deduplication.
    #[must_use]
    pub fn with_dedup_capacity(mut self, capacity: usize) -> Self {
        self.dedup_capacity = capacity;
        self
    }

    /// The bound address, as a `host:port` string clients can connect to.
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string())
    }

    /// The shared shutdown flag (for embedding the server under an
    /// external signal handler).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop on the calling thread until shut down. Each
    /// accepted connection is served on its own scoped thread.
    pub fn run(self) {
        let BoundServer {
            listener,
            backend,
            shutdown,
            dedup_capacity,
        } = self;
        let wake_addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        let dedup = Mutex::new(ReplyCache::new(dedup_capacity));
        let backend = &*backend;
        let shutdown = &*shutdown;
        let dedup = &dedup;
        thread::scope(|scope| {
            loop {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if shutdown.load(Ordering::Acquire) {
                            break; // the wake-up poke, not a real client
                        }
                        let wake_addr = wake_addr.clone();
                        scope.spawn(move || {
                            handle_connection(stream, backend, dedup, shutdown, &wake_addr);
                        });
                    }
                    Err(_) if shutdown.load(Ordering::Acquire) => break,
                    Err(_) => continue, // transient accept failure
                }
            }
        });
    }

    /// Runs the server on a background thread, returning a handle that
    /// can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::clone(&self.shutdown);
        let join = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            join,
        }
    }
}

/// A running server on a background thread (from [`BoundServer::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    shutdown: Arc<AtomicBool>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The server's `host:port` address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the server and waits for every connection handler to drain.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept; an immediately-dropped connection is
        // indistinguishable from a client that connected and went away.
        drop(TcpStream::connect(&self.addr));
        self.join.join().expect("server thread panicked");
    }
}

/// Outcome of one patient read attempt.
enum Inbound {
    /// A complete frame arrived.
    Frame(Message),
    /// The peer closed, the frame was malformed, or shutdown was
    /// requested: stop serving this connection.
    Hangup,
}

/// Fills `buf` completely, resuming across read-timeout polls (the
/// connection's short read timeout doubles as the shutdown-flag poll).
/// Partial progress is kept in `buf`, so a frame split across polls is
/// reassembled rather than desynced. Returns `false` to hang up: EOF,
/// a hard I/O error, or shutdown requested while no bytes of `buf` have
/// arrived yet (mid-buffer, one more poll is allowed to drain the frame).
fn fill_patient(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> bool {
    let mut filled = 0;
    let mut polls_after_shutdown = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false, // peer closed
            Ok(n) => filled += n,
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    if filled == 0 || polls_after_shutdown > 0 {
                        return false;
                    }
                    polls_after_shutdown += 1;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Reads one frame, tolerating read-timeout polls while idle and between
/// partial reads. Returns [`Inbound::Hangup`] on EOF, on shutdown, and on
/// malformed input (a desynced stream cannot be re-framed, so hanging up
/// is the only safe reaction).
fn read_frame_patient(stream: &mut TcpStream, shutdown: &AtomicBool) -> Inbound {
    let mut header = [0u8; 4];
    if !fill_patient(stream, &mut header, shutdown) {
        return Inbound::Hangup;
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Inbound::Hangup;
    }
    let mut payload = vec![0u8; len as usize];
    if !fill_patient(stream, &mut payload, shutdown) {
        return Inbound::Hangup;
    }
    match Message::decode(&payload) {
        Ok(message) => Inbound::Frame(message),
        Err(_) => Inbound::Hangup,
    }
}

fn handle_connection(
    mut stream: TcpStream,
    backend: &dyn ServeBackend,
    dedup: &Mutex<ReplyCache>,
    shutdown: &AtomicBool,
    wake_addr: &str,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        let message = match read_frame_patient(&mut stream, shutdown) {
            Inbound::Frame(m) => m,
            Inbound::Hangup => return,
        };
        let reply = match message {
            Message::Fetch { request_id, files } => {
                let reply = serve_fetch(backend, dedup, request_id, files, false);
                Message::reply_for(&reply)
            }
            Message::FetchOwned { request_id, files } => {
                let reply = serve_fetch(backend, dedup, request_id, files, true);
                Message::reply_for(&reply)
            }
            Message::StatsRequest { request_id } => {
                let mut stats = backend.wire_stats();
                stats.reply_cache_hits += lock_dedup(dedup).hits();
                Message::StatsReply { request_id, stats }
            }
            Message::ClusterUpdate {
                request_id,
                epoch,
                members,
            } => match backend.apply_cluster_update(epoch, &members) {
                Ok(held) => Message::ClusterUpdateAck {
                    request_id,
                    epoch: held,
                },
                Err(reason) => Message::Error {
                    request_id,
                    message: reason,
                },
            },
            Message::Shutdown { request_id } => {
                let ack = Message::ShutdownAck { request_id };
                let _ = write_frame(&mut stream, &ack);
                let _ = stream.flush();
                shutdown.store(true, Ordering::Release);
                // Wake the accept loop so the scope can finish.
                drop(TcpStream::connect(wake_addr));
                return;
            }
            other => Message::Error {
                request_id: other.request_id(),
                message: format!("unexpected client message: {other:?}"),
            },
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn lock_dedup(dedup: &Mutex<ReplyCache>) -> MutexGuard<'_, ReplyCache> {
    dedup
        .lock()
        .expect("a connection handler panicked while holding the reply cache")
}

/// Serves one fetch, exactly-once per request id (see the [module
/// docs](self)). `owned` selects the depth-bounded
/// [`ServeBackend::serve_owned`] path.
///
/// For backends that [serialise](ServeBackend::serializes_execution), the
/// reply cache is held across execution, so a racing retry blocks rather
/// than double-executing. Backends that deduplicate internally execute
/// outside the lock (the get/insert around execution is then merely a
/// fast path; the backend's own dedup supplies exactly-once).
fn serve_fetch(
    backend: &dyn ServeBackend,
    dedup: &Mutex<ReplyCache>,
    request_id: u64,
    files: Vec<FileId>,
    owned: bool,
) -> GroupReply {
    let files = &files[..];
    {
        let mut guard = lock_dedup(dedup);
        if let Some(remembered) = guard.get(request_id) {
            return remembered.clone();
        }
        if backend.serializes_execution() {
            let reply = execute(backend, request_id, files, owned);
            guard.insert(reply.clone());
            return reply;
        }
    }
    let reply = execute(backend, request_id, files, owned);
    lock_dedup(dedup).insert(reply.clone());
    reply
}

fn execute(
    backend: &dyn ServeBackend,
    request_id: u64,
    files: &[FileId],
    owned: bool,
) -> GroupReply {
    if owned {
        backend.serve_owned(request_id, files)
    } else {
        backend.serve_group(request_id, files)
    }
}

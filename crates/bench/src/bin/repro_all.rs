//! Runs every figure reproduction in paper order. Equivalent to running
//! `repro_fig3`, `repro_fig4`, `repro_fig5`, `repro_fig7`, `repro_fig8`
//! and `repro_headline` back to back; see each binary's docs for the
//! expected shapes.

use std::process::Command;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exe = std::env::current_exe()?;
    let dir = exe.parent().expect("binary lives in a directory");
    for bin in [
        "repro_fig3",
        "repro_fig4",
        "repro_fig5",
        "repro_fig7",
        "repro_fig8",
        "repro_headline",
    ] {
        let path = dir.join(bin);
        eprintln!("=== {bin} ===");
        let status = Command::new(&path).status()?;
        if !status.success() {
            return Err(format!("{bin} failed with {status}").into());
        }
    }
    Ok(())
}

//! Property-based tests for successor lists, tables and groups.

use fgcache_successor::eval::evaluate_replacement;
use fgcache_successor::{
    DecayedSuccessorList, GroupBuilder, LfuSuccessorList, LruSuccessorList, OracleSuccessorList,
    ProbabilityGraph, RelationshipGraph, SuccessorList, SuccessorTable,
};
use fgcache_trace::Trace;
use fgcache_types::FileId;
use proptest::prelude::*;

fn file_seq() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..15, 0..300)
}

/// Checks the invariants shared by all list implementations.
fn check_list_invariants<L: SuccessorList>(mut list: L, observations: &[u64]) {
    for &f in observations {
        list.observe(FileId(f));
        if let Some(cap) = list.capacity() {
            assert!(list.len() <= cap, "list exceeded capacity");
        }
        // The most recent observation is the most likely for LRU-style
        // lists; at minimum it must be *contained*.
        assert!(list.contains(FileId(f)), "just-observed successor missing");
        // ranked() is consistent with contains()/len().
        let ranked = list.ranked();
        assert_eq!(ranked.len(), list.len());
        let mut sorted = ranked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ranked.len(), "ranked() contains duplicates");
        for f in ranked {
            assert!(list.contains(f));
        }
        assert_eq!(list.ranked().first().copied(), list.most_likely());
    }
}

proptest! {
    #[test]
    fn lru_list_invariants(cap in 1usize..8, obs in file_seq()) {
        check_list_invariants(LruSuccessorList::new(cap).unwrap(), &obs);
    }

    #[test]
    fn lfu_list_invariants(cap in 1usize..8, obs in file_seq()) {
        check_list_invariants(LfuSuccessorList::new(cap).unwrap(), &obs);
    }

    #[test]
    fn oracle_list_invariants(obs in file_seq()) {
        check_list_invariants(OracleSuccessorList::new(), &obs);
    }

    #[test]
    fn decayed_list_invariants(
        cap in 1usize..8,
        decay in 0.05f64..=1.0,
        obs in file_seq(),
    ) {
        check_list_invariants(DecayedSuccessorList::new(cap, decay).unwrap(), &obs);
    }

    #[test]
    fn oracle_remembers_everything(obs in file_seq()) {
        let mut oracle = OracleSuccessorList::new();
        for &f in &obs {
            oracle.observe(FileId(f));
        }
        for &f in &obs {
            prop_assert!(oracle.contains(FileId(f)));
        }
        let mut unique: Vec<u64> = obs.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(oracle.len(), unique.len());
    }

    #[test]
    fn lru_list_is_sliding_window_of_distinct_recents(
        cap in 1usize..6,
        obs in file_seq(),
    ) {
        let mut list = LruSuccessorList::new(cap).unwrap();
        for &f in &obs {
            list.observe(FileId(f));
        }
        // Expected contents: the `cap` most recent *distinct* observations,
        // in reverse observation order.
        let mut expected: Vec<FileId> = Vec::new();
        for &f in obs.iter().rev() {
            let id = FileId(f);
            if !expected.contains(&id) {
                expected.push(id);
            }
            if expected.len() == cap {
                break;
            }
        }
        prop_assert_eq!(list.ranked(), expected);
    }

    #[test]
    fn table_chain_has_no_duplicates_and_excludes_start(
        obs in file_seq(),
        cap in 1usize..5,
        n in 0usize..12,
    ) {
        let mut table = SuccessorTable::new(LruSuccessorList::new(cap).unwrap());
        for &f in &obs {
            table.record(FileId(f));
        }
        for start in 0u64..15 {
            let chain = table.predict_chain(FileId(start), n);
            prop_assert!(chain.len() <= n);
            prop_assert!(!chain.contains(&FileId(start)));
            let mut sorted = chain.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), chain.len(), "duplicate in chain");
        }
    }

    #[test]
    fn groups_are_well_formed(
        obs in file_seq(),
        g in 1usize..8,
    ) {
        let mut table = SuccessorTable::new(LruSuccessorList::new(3).unwrap());
        for &f in &obs {
            table.record(FileId(f));
        }
        let builder = GroupBuilder::new(g).unwrap();
        for start in 0u64..15 {
            let group = builder.build(&table, FileId(start));
            prop_assert!(!group.is_empty() && group.len() <= g);
            prop_assert_eq!(group.requested(), FileId(start));
            prop_assert!(group.contains(FileId(start)));
            let mut sorted: Vec<FileId> = group.files().to_vec();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), group.len(), "duplicate group member");
        }
    }

    #[test]
    fn oracle_lower_bounds_every_policy(
        obs in prop::collection::vec(0u64..10, 2..400),
        cap in 1usize..6,
    ) {
        let trace = Trace::from_files(obs);
        let oracle = evaluate_replacement(&trace, OracleSuccessorList::new());
        let lru = evaluate_replacement(&trace, LruSuccessorList::new(cap).unwrap());
        let lfu = evaluate_replacement(&trace, LfuSuccessorList::new(cap).unwrap());
        let dec = evaluate_replacement(&trace, DecayedSuccessorList::new(cap, 0.5).unwrap());
        prop_assert!(oracle.misses <= lru.misses);
        prop_assert!(oracle.misses <= lfu.misses);
        prop_assert!(oracle.misses <= dec.misses);
        prop_assert_eq!(oracle.transitions, lru.transitions);
    }

    #[test]
    fn evaluation_miss_probability_in_unit_range(
        obs in prop::collection::vec(0u64..12, 0..300),
    ) {
        let trace = Trace::from_files(obs);
        let r = evaluate_replacement(&trace, LruSuccessorList::new(2).unwrap());
        let p = r.miss_probability();
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(r.misses <= r.transitions);
    }

    #[test]
    fn graph_weights_match_transition_counts(obs in file_seq()) {
        let mut graph = RelationshipGraph::new();
        graph.record_sequence(obs.iter().map(|&f| FileId(f)));
        // Total edge weight == number of transitions.
        let total: u64 = (0u64..15)
            .flat_map(|a| (0u64..15).map(move |b| (a, b)))
            .map(|(a, b)| graph.weight(FileId(a), FileId(b)))
            .sum();
        prop_assert_eq!(total as usize, obs.len().saturating_sub(1));
        // Node access counts sum to the sequence length.
        let nodes: u64 = (0u64..15).map(|f| graph.access_count(FileId(f))).sum();
        prop_assert_eq!(nodes as usize, obs.len());
    }

    #[test]
    fn covering_groups_cover_every_file_with_successors(
        obs in file_seq(),
        size in 1usize..6,
    ) {
        let mut graph = RelationshipGraph::new();
        graph.record_sequence(obs.iter().map(|&f| FileId(f)));
        let groups = graph.covering_groups(size);
        for pair in obs.windows(2) {
            let head = FileId(pair[0]);
            prop_assert!(
                groups.iter().any(|g| g.contains(head)),
                "file with successors left uncovered"
            );
        }
        for g in &groups {
            prop_assert!(g.len() <= size.max(1));
        }
    }

    #[test]
    fn probability_graph_distributions_normalised(
        obs in file_seq(),
        window in 1usize..6,
    ) {
        let mut pg = ProbabilityGraph::new(window, 0.0).unwrap();
        for &f in &obs {
            pg.record(FileId(f));
        }
        for a in 0u64..15 {
            let total: f64 = (0u64..15)
                .map(|b| pg.probability(FileId(a), FileId(b)))
                .sum();
            prop_assert!(total <= 1.0 + 1e-9);
            // Either nothing observed (0) or a full distribution (1).
            prop_assert!(total < 1e-9 || (total - 1.0).abs() < 1e-9);
        }
    }
}

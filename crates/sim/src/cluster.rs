//! A virtual cluster: N [`ClusterNode`]s over in-process simulated
//! transports, replayed against a streamed event source and
//! byte-compared to a single-process oracle.
//!
//! Every node gets its own [`ShardedAggregatingCache`]; peers reach each
//! other through [`SimTransport`]s to shared `Arc` caches, so the whole
//! fleet — 100+ nodes — runs in one process with zero sockets. The
//! replay driver feeds events round-robin into the fleet (event *i*
//! enters at node *i mod N*), applies a membership schedule at exact
//! event indices, and reports per-node load plus merged upstream
//! traffic.
//!
//! The oracle ([`oracle_replay`]) is the routing math *without* the
//! cluster machinery: one loop that sends each event straight to
//! `ring.owner(file)`'s plain cache. A sequential replay through the
//! real cluster must produce byte-identical per-node [`WireStats`] —
//! any divergence means routing, proxying, single-flight or membership
//! handling changed observable behaviour.

use std::sync::Arc;

use fgcache_cluster::{ClusterNode, ClusterNodeStats, ClusterView, NodeId, OwnershipRing};
use fgcache_core::{CostModel, ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{ServeBackend, SimTransport, TransportStats, WireStats};
use fgcache_trace::synth::Zipf;
use fgcache_types::hash::FastMap;
use fgcache_types::rng::SplitMix64;
use fgcache_types::{FileId, ValidationError};

/// Shape of every node's cache in a [`VirtualCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node cache capacity, in files.
    pub node_capacity: usize,
    /// Shards per node cache.
    pub shards: usize,
    /// Group size for aggregated fetches.
    pub group_size: usize,
    /// Successor-list capacity per file.
    pub successor_capacity: usize,
}

impl VirtualClusterConfig {
    /// A reasonable default shape for `nodes` nodes.
    pub fn standard(nodes: usize) -> Self {
        VirtualClusterConfig {
            nodes,
            node_capacity: 400,
            shards: 4,
            group_size: 5,
            successor_capacity: 8,
        }
    }

    fn cache(&self) -> Result<ShardedAggregatingCache, ValidationError> {
        ShardedAggregatingCacheBuilder::new(self.node_capacity)
            .shards(self.shards)
            .group_size(self.group_size)
            .successor_capacity(self.successor_capacity)
            .build()
    }

    fn initial_view(&self) -> ClusterView {
        ClusterView::new(
            1,
            (0..self.nodes as u64).map(|id| (NodeId(id), sim_addr(id))),
        )
    }
}

fn sim_addr(id: u64) -> String {
    format!("sim://{id}")
}

/// One membership change at an exact event index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The node leaves the ring (its process keeps serving and proxying).
    Leave(u64),
    /// The node (re)joins the ring.
    Join(u64),
}

/// A scheduled membership change: applied *before* event `at_event` is
/// served. The schedule must be sorted by `at_event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Event index the change precedes.
    pub at_event: u64,
    /// What happens.
    pub change: MembershipChange,
}

/// N cluster nodes over in-process transports. Build with
/// [`VirtualCluster::build`], drive with [`VirtualCluster::replay`].
pub struct VirtualCluster {
    nodes: Vec<Arc<ClusterNode>>,
    view: ClusterView,
}

impl std::fmt::Debug for VirtualCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualCluster")
            .field("nodes", &self.nodes.len())
            .field("epoch", &self.view.epoch())
            .finish()
    }
}

impl VirtualCluster {
    /// Builds the fleet: one cache per node, connectors wired to the
    /// peers' shared caches, everyone holding the full initial view.
    ///
    /// # Errors
    ///
    /// Propagates cache-configuration validation.
    pub fn build(config: &VirtualClusterConfig) -> Result<Self, ValidationError> {
        if config.nodes == 0 {
            return Err(ValidationError::new("nodes", "must be greater than zero"));
        }
        let mut caches: FastMap<u64, Arc<ShardedAggregatingCache>> = FastMap::default();
        for id in 0..config.nodes as u64 {
            caches.insert(id, Arc::new(config.cache()?));
        }
        let caches = Arc::new(caches);
        let view = config.initial_view();
        let nodes = (0..config.nodes as u64)
            .map(|id| {
                let caches = Arc::clone(&caches);
                let cache = Arc::clone(
                    caches
                        .get(&id)
                        .expect("cache built for every node id above"),
                );
                let node = ClusterNode::new(
                    NodeId(id),
                    cache,
                    Box::new(move |peer, _addr| {
                        let target = caches.get(&peer.as_u64()).ok_or_else(|| {
                            fgcache_types::TransportError::new(
                                fgcache_types::TransportErrorKind::ConnectionLost,
                                format!("no virtual node {peer}"),
                            )
                        })?;
                        Ok(Box::new(SimTransport::to_shared_arc(
                            Arc::clone(target),
                            CostModel::remote(),
                        ))
                            as Box<dyn fgcache_net::Transport + Send>)
                    }),
                );
                node.apply_view(view.clone());
                Arc::new(node)
            })
            .collect();
        Ok(VirtualCluster { nodes, view })
    }

    /// The fleet, in node-id order.
    pub fn nodes(&self) -> &[Arc<ClusterNode>] {
        &self.nodes
    }

    /// The driver-side membership view.
    pub fn view(&self) -> &ClusterView {
        &self.view
    }

    /// Applies one membership change fleet-wide (every process hears
    /// about it, including nodes outside the ring — they keep serving).
    pub fn apply_change(&mut self, change: MembershipChange) {
        self.view = match change {
            MembershipChange::Leave(id) => self.view.without_member(NodeId(id)),
            MembershipChange::Join(id) => self.view.with_member(NodeId(id), &sim_addr(id)),
        };
        for node in &self.nodes {
            node.apply_view(self.view.clone());
        }
    }

    /// Replays `events` round-robin through the fleet, applying
    /// `schedule` (sorted by `at_event`) at exact indices. Sequential
    /// and deterministic: the same events and schedule always produce
    /// the same report.
    pub fn replay(
        &mut self,
        events: impl IntoIterator<Item = FileId>,
        schedule: &[MembershipEvent],
    ) -> ClusterReplayReport {
        let mut pending = schedule.iter();
        let mut next_change = pending.next();
        let mut count = 0u64;
        for (i, file) in events.into_iter().enumerate() {
            let i = i as u64;
            while let Some(event) = next_change {
                if event.at_event > i {
                    break;
                }
                self.apply_change(event.change);
                next_change = pending.next();
            }
            let entry = &self.nodes[(i % self.nodes.len() as u64) as usize];
            entry.serve(i, &[file]);
            count += 1;
        }
        self.report(count)
    }

    /// Snapshot the fleet's stats into a report.
    fn report(&self, events: u64) -> ClusterReplayReport {
        let per_node: Vec<WireStats> = self.nodes.iter().map(|n| n.wire_stats()).collect();
        let node_stats = self.nodes.iter().map(|n| n.stats()).collect();
        let mut upstream = TransportStats::default();
        for node in &self.nodes {
            upstream.merge(&node.transport_stats());
        }
        let load: Vec<u64> = per_node.iter().map(|s| s.accesses).collect();
        // Imbalance is a property of the *live* fleet: averaging over
        // departed members dilutes the mean and overstates how unevenly
        // the survivors are loaded (a 4-node fleet that lost 2 nodes is
        // not "2× imbalanced" just because the dead entries read zero...
        // and a departed node's historical load is not current load
        // either). `None` means undefined: no live members, or no events
        // reached them.
        let live_load: Vec<u64> = self
            .view
            .members()
            .iter()
            .filter_map(|(id, _)| usize::try_from(id.as_u64()).ok())
            .filter_map(|slot| load.get(slot).copied())
            .collect();
        let live_total: u64 = live_load.iter().sum();
        let imbalance = if live_load.is_empty() || live_total == 0 {
            None
        } else {
            let mean = live_total as f64 / live_load.len() as f64;
            let max = live_load.iter().copied().max().unwrap_or(0);
            Some(max as f64 / mean)
        };
        ClusterReplayReport {
            events,
            per_node,
            node_stats,
            upstream,
            load,
            imbalance,
        }
    }
}

/// What a [`VirtualCluster::replay`] observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReplayReport {
    /// Events replayed.
    pub events: u64,
    /// Per-node cache statistics (node-id order) — the byte-compare
    /// surface against [`oracle_replay`].
    pub per_node: Vec<WireStats>,
    /// Per-node routing counters.
    pub node_stats: Vec<ClusterNodeStats>,
    /// Merged upstream (proxy) traffic across the fleet.
    pub upstream: TransportStats,
    /// Per-node access counts (the load distribution), in node-id order
    /// and covering every node ever built — including departed members.
    pub load: Vec<u64>,
    /// Max/mean of the load distribution **over live members at the end
    /// of the replay** (1.0 = perfectly even). `None` when undefined:
    /// the fleet has no live members, or no events reached them —
    /// renderers print "—" rather than a made-up number.
    pub imbalance: Option<f64>,
}

/// The single-process oracle: the same events, the same membership
/// schedule, but each event goes *directly* to its owner's plain cache —
/// no transports, no proxying, no single-flight. A correct cluster
/// replay is byte-identical per node.
///
/// An event whose owner is undefined (empty ring) is served by its
/// round-robin entry node, mirroring the cluster's local-serve fallback.
///
/// # Errors
///
/// Propagates cache-configuration validation.
pub fn oracle_replay(
    config: &VirtualClusterConfig,
    events: impl IntoIterator<Item = FileId>,
    schedule: &[MembershipEvent],
) -> Result<Vec<WireStats>, ValidationError> {
    if config.nodes == 0 {
        return Err(ValidationError::new("nodes", "must be greater than zero"));
    }
    let caches: Vec<ShardedAggregatingCache> = (0..config.nodes)
        .map(|_| config.cache())
        .collect::<Result<_, _>>()?;
    let mut view = config.initial_view();
    let mut ring: OwnershipRing = view.ring();
    let mut pending = schedule.iter();
    let mut next_change = pending.next();
    for (i, file) in events.into_iter().enumerate() {
        let i = i as u64;
        while let Some(event) = next_change {
            if event.at_event > i {
                break;
            }
            view = match event.change {
                MembershipChange::Leave(id) => view.without_member(NodeId(id)),
                MembershipChange::Join(id) => view.with_member(NodeId(id), &sim_addr(id)),
            };
            ring = view.ring();
            next_change = pending.next();
        }
        let entry = i % config.nodes as u64;
        let target = ring.owner(file).map(NodeId::as_u64).unwrap_or(entry);
        caches[target as usize].handle_access(file);
    }
    Ok(caches.iter().map(|c| c.wire_stats()).collect())
}

/// A streamed Zipf event source: `events` draws over a `universe` of
/// files, most-popular-first, from a seeded deterministic generator.
/// O(1) memory regardless of length — this is what lets the virtual
/// cluster replay multi-million-event traces without materialising them.
///
/// # Errors
///
/// Propagates [`Zipf::new`] validation (`universe == 0`, bad exponent).
pub fn zipf_stream(
    universe: usize,
    exponent: f64,
    seed: u64,
    events: u64,
) -> Result<impl Iterator<Item = FileId>, ValidationError> {
    let zipf = Zipf::new(universe, exponent)?;
    let mut rng = SplitMix64::new(seed);
    // `Zipf::sample` returns a rank in `0..universe`; `usize → u64` is
    // value-preserving on every supported platform (usize ≤ 64 bits), so
    // the cast below never narrows. The explicit check documents the
    // invariant instead of relying on it silently.
    u64::try_from(universe)
        .map_err(|_| ValidationError::new("universe", "must fit in a u64 file id"))?;
    Ok((0..events).map(move |_| FileId(zipf.sample(&mut rng) as u64)))
}

/// A streamed Zipf **run** source: like [`zipf_stream`], but each Zipf
/// draw emits a *run* of `run_length` sequentially numbered files
/// starting at the drawn rank (wrapping at the universe edge), so the
/// trace carries deterministic successor structure on top of the Zipf
/// marginal. `events` counts emitted accesses, not draws — a run is
/// truncated mid-way if the budget ends inside it.
///
/// This is the workload the planner's `--compare-grouping` mode replays:
/// an IRM model sees only the (near-Zipf) per-file marginal and is blind
/// to the runs, while the aggregating cache's successor tracking learns
/// them — the measured gap is exactly the value of group-based
/// management that no single-file analytic bound can predict.
///
/// # Errors
///
/// Propagates [`Zipf::new`] validation, and rejects a zero `run_length`.
pub fn zipf_run_stream(
    universe: usize,
    exponent: f64,
    run_length: usize,
    seed: u64,
    events: u64,
) -> Result<impl Iterator<Item = FileId>, ValidationError> {
    if run_length == 0 {
        return Err(ValidationError::new(
            "run_length",
            "must be greater than zero",
        ));
    }
    let zipf = Zipf::new(universe, exponent)?;
    u64::try_from(universe)
        .map_err(|_| ValidationError::new("universe", "must fit in a u64 file id"))?;
    let mut rng = SplitMix64::new(seed);
    let mut head = 0usize;
    let mut offset = run_length; // force a fresh draw on the first event
    Ok((0..events).map(move |_| {
        if offset >= run_length {
            head = zipf.sample(&mut rng);
            offset = 0;
        }
        let rank = (head + offset) % universe;
        offset += 1;
        FileId(rank as u64)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(nodes: usize) -> VirtualClusterConfig {
        VirtualClusterConfig {
            nodes,
            node_capacity: 60,
            shards: 2,
            group_size: 3,
            successor_capacity: 4,
        }
    }

    fn mid_replay_schedule(events: u64) -> Vec<MembershipEvent> {
        vec![
            MembershipEvent {
                at_event: events * 2 / 5,
                change: MembershipChange::Leave(1),
            },
            MembershipEvent {
                at_event: events / 2,
                change: MembershipChange::Leave(3),
            },
            MembershipEvent {
                at_event: events * 7 / 10,
                change: MembershipChange::Join(1),
            },
        ]
    }

    #[test]
    fn single_node_cluster_matches_a_plain_cache() {
        let config = quick_config(1);
        let events = || zipf_stream(200, 0.9, 7, 3_000).expect("valid zipf");
        let mut cluster = VirtualCluster::build(&config).expect("valid config");
        let report = cluster.replay(events(), &[]);
        let oracle = oracle_replay(&config, events(), &[]).expect("valid config");
        assert_eq!(report.per_node, oracle);
        assert_eq!(report.upstream.requests, 0, "nothing to proxy");
        assert_eq!(report.node_stats[0].local_serves, 3_000);
    }

    #[test]
    fn fleet_replay_is_byte_identical_to_the_oracle() {
        let config = quick_config(8);
        let total = 20_000u64;
        let schedule = mid_replay_schedule(total);
        let events = || zipf_stream(500, 0.8, 42, total).expect("valid zipf");
        let mut cluster = VirtualCluster::build(&config).expect("valid config");
        let report = cluster.replay(events(), &schedule);
        let oracle = oracle_replay(&config, events(), &schedule).expect("valid config");
        assert_eq!(report.per_node, oracle, "cluster must match the oracle");
        assert_eq!(report.events, total);
        // Every event lands on exactly one cache.
        assert_eq!(report.load.iter().sum::<u64>(), total);
        // Proxying really happened (entry ≠ owner most of the time).
        assert!(report.upstream.requests > 0);
        let proxied: u64 = report.node_stats.iter().map(|s| s.proxied).sum();
        assert_eq!(report.upstream.requests, proxied);
        assert_eq!(
            report
                .node_stats
                .iter()
                .map(|s| s.proxy_failures)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let config = quick_config(5);
        let schedule = mid_replay_schedule(5_000);
        let run = || {
            let mut cluster = VirtualCluster::build(&config).expect("valid config");
            cluster.replay(
                zipf_stream(300, 0.9, 11, 5_000).expect("valid zipf"),
                &schedule,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn imbalance_is_reported_and_sane() {
        let config = quick_config(4);
        let mut cluster = VirtualCluster::build(&config).expect("valid config");
        let report = cluster.replay(zipf_stream(400, 0.7, 3, 8_000).expect("valid zipf"), &[]);
        let imbalance = report.imbalance.expect("full live fleet with traffic");
        assert!(imbalance >= 1.0, "max/mean is at least 1");
        assert!(
            imbalance < 3.0,
            "rendezvous hashing cannot plausibly triple-load one of 4 nodes, got {imbalance}"
        );
    }

    #[test]
    fn imbalance_covers_live_members_only() {
        // Regression: the mean used to be taken over `load.len()` — every
        // node ever built — so a mid-replay leave permanently diluted the
        // denominator and overstated the imbalance of the survivors.
        let config = quick_config(4);
        let events = 8_000u64;
        let schedule = vec![MembershipEvent {
            at_event: events / 2,
            change: MembershipChange::Leave(1),
        }];
        let mut cluster = VirtualCluster::build(&config).expect("valid config");
        let report = cluster.replay(
            zipf_stream(400, 0.7, 3, events).expect("valid zipf"),
            &schedule,
        );
        // Round-robin entry still hands node 1 its share of raw accesses,
        // so the departed node's load is nonzero — exactly the entry the
        // live-member mean must exclude.
        assert!(report.load[1] > 0);
        let live: Vec<u64> = [0usize, 2, 3].iter().map(|&i| report.load[i]).collect();
        let mean = live.iter().sum::<u64>() as f64 / live.len() as f64;
        let expected = *live.iter().max().expect("non-empty") as f64 / mean;
        let got = report.imbalance.expect("live members with traffic");
        assert!(
            (got - expected).abs() < 1e-12,
            "imbalance {got} should be computed over live members ({expected})"
        );
        // The old all-nodes formula gives a different (wrong) number on
        // this schedule; make sure we are not still computing it.
        let all_mean = report.load.iter().sum::<u64>() as f64 / report.load.len() as f64;
        let all_imbalance = report.load.iter().copied().max().unwrap() as f64 / all_mean;
        assert!(
            (got - all_imbalance).abs() > 1e-9,
            "live-member imbalance should differ from the all-nodes formula here"
        );
    }

    #[test]
    fn imbalance_is_undefined_for_an_empty_fleet() {
        // Every member leaves before any event: load lands on departed
        // nodes via the local-serve fallback, and max/mean over zero live
        // members must be reported as undefined, not 0.0 or a NaN.
        let config = quick_config(2);
        let schedule = vec![
            MembershipEvent {
                at_event: 0,
                change: MembershipChange::Leave(0),
            },
            MembershipEvent {
                at_event: 0,
                change: MembershipChange::Leave(1),
            },
        ];
        let mut cluster = VirtualCluster::build(&config).expect("valid config");
        let report = cluster.replay(
            zipf_stream(100, 0.8, 5, 1_000).expect("valid zipf"),
            &schedule,
        );
        assert_eq!(report.events, 1_000);
        assert_eq!(report.imbalance, None);
    }

    #[test]
    fn zipf_stream_is_deterministic_and_bounded() {
        let a: Vec<FileId> = zipf_stream(100, 1.0, 9, 1_000)
            .expect("valid zipf")
            .collect();
        let b: Vec<FileId> = zipf_stream(100, 1.0, 9, 1_000)
            .expect("valid zipf")
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|f| f.as_u64() < 100));
        assert!(zipf_stream(0, 1.0, 9, 10).is_err());
    }

    #[test]
    fn zipf_run_stream_emits_wrapped_sequential_runs() {
        let events: Vec<FileId> = zipf_run_stream(50, 0.9, 4, 7, 1_000)
            .expect("valid run stream")
            .collect();
        assert_eq!(events.len(), 1_000);
        assert!(events.iter().all(|f| f.as_u64() < 50));
        // Every run is sequential mod the universe: within each aligned
        // window of 4, successors follow their predecessor by exactly 1.
        for run in events.chunks(4) {
            for pair in run.windows(2) {
                assert_eq!(
                    (pair[0].as_u64() + 1) % 50,
                    pair[1].as_u64(),
                    "run broken at {pair:?}"
                );
            }
        }
        // Deterministic under the seed, like every stream in the crate.
        let again: Vec<FileId> = zipf_run_stream(50, 0.9, 4, 7, 1_000)
            .expect("valid run stream")
            .collect();
        assert_eq!(events, again);
        assert!(zipf_run_stream(50, 0.9, 0, 7, 10).is_err());
        assert!(zipf_run_stream(0, 0.9, 4, 7, 10).is_err());
    }

    #[test]
    fn zipf_run_stream_with_unit_runs_is_zipf_stream() {
        let runs: Vec<FileId> = zipf_run_stream(80, 1.1, 1, 13, 500)
            .expect("valid")
            .collect();
        let plain: Vec<FileId> = zipf_stream(80, 1.1, 13, 500).expect("valid").collect();
        assert_eq!(runs, plain);
    }
}

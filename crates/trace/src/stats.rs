//! Descriptive statistics over traces.
//!
//! These are the sanity checks used throughout the paper's §4.1 workload
//! characterisation: event volume, unique-file counts, access-kind mix,
//! repeat behaviour and popularity skew.

use std::collections::HashMap;

use fgcache_types::{AccessKind, FileId};

use crate::Trace;

/// Summary statistics of a [`Trace`].
///
/// ```
/// use fgcache_trace::{stats::TraceStats, Trace};
///
/// let t = Trace::from_files([1, 2, 1, 1]);
/// let s = TraceStats::compute(&t);
/// assert_eq!(s.events, 4);
/// assert_eq!(s.unique_files, 2);
/// assert_eq!(s.repeat_accesses, 2); // third and fourth touch known files
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total number of events.
    pub events: usize,
    /// Number of distinct files accessed.
    pub unique_files: usize,
    /// Number of distinct clients.
    pub clients: usize,
    /// Count of read events.
    pub reads: usize,
    /// Count of write events.
    pub writes: usize,
    /// Count of create events.
    pub creates: usize,
    /// Count of delete events.
    pub deletes: usize,
    /// Events whose file had already been accessed earlier in the trace.
    pub repeat_accesses: usize,
    /// Accesses of the single most popular file.
    pub max_file_accesses: usize,
    /// Fraction of all accesses going to the top 1 % most popular files
    /// (at least one file); 0 for an empty trace.
    pub top_percent_share: f64,
    /// Number of files accessed exactly once.
    pub singleton_files: usize,
}

impl TraceStats {
    /// Computes statistics for `trace` in a single pass.
    pub fn compute(trace: &Trace) -> Self {
        let mut counts: HashMap<FileId, usize> = HashMap::new();
        let mut reads = 0;
        let mut writes = 0;
        let mut creates = 0;
        let mut deletes = 0;
        let mut repeat_accesses = 0;
        for ev in trace.events() {
            match ev.kind {
                AccessKind::Read => reads += 1,
                AccessKind::Write => writes += 1,
                AccessKind::Create => creates += 1,
                AccessKind::Delete => deletes += 1,
            }
            let c = counts.entry(ev.file).or_insert(0);
            if *c > 0 {
                repeat_accesses += 1;
            }
            *c += 1;
        }
        let unique_files = counts.len();
        let singleton_files = counts.values().filter(|&&c| c == 1).count();
        let max_file_accesses = counts.values().copied().max().unwrap_or(0);
        let top_percent_share = if trace.is_empty() || unique_files == 0 {
            0.0
        } else {
            let mut sorted: Vec<usize> = counts.values().copied().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let top_k = (unique_files.div_ceil(100)).max(1);
            let top: usize = sorted.iter().take(top_k).sum();
            top as f64 / trace.len() as f64
        };
        TraceStats {
            events: trace.len(),
            unique_files,
            clients: trace.clients().len(),
            reads,
            writes,
            creates,
            deletes,
            repeat_accesses,
            max_file_accesses,
            top_percent_share,
            singleton_files,
        }
    }

    /// Fraction of events that re-access an already-seen file; 0 for an
    /// empty trace. High repeat fractions are a precondition for *any*
    /// caching to help.
    pub fn repeat_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.repeat_accesses as f64 / self.events as f64
        }
    }

    /// Fraction of events that are mutations (write/create/delete).
    pub fn mutation_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            (self.writes + self.creates + self.deletes) as f64 / self.events as f64
        }
    }

    /// Renders a short human-readable report.
    pub fn report(&self) -> String {
        format!(
            "events {} | unique files {} | clients {} | R/W/C/D {}/{}/{}/{} | \
             repeat {:.1}% | singletons {} | top-1% share {:.1}%",
            self.events,
            self.unique_files,
            self.clients,
            self.reads,
            self.writes,
            self.creates,
            self.deletes,
            self.repeat_fraction() * 100.0,
            self.singleton_files,
            self.top_percent_share * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, WorkloadProfile};
    use fgcache_types::{AccessEvent, ClientId, SeqNo};

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s.events, 0);
        assert_eq!(s.unique_files, 0);
        assert_eq!(s.repeat_fraction(), 0.0);
        assert_eq!(s.mutation_fraction(), 0.0);
        assert_eq!(s.top_percent_share, 0.0);
    }

    #[test]
    fn counts_kinds() {
        let t: Trace = vec![
            AccessEvent::new(SeqNo(0), ClientId(0), FileId(1), AccessKind::Read),
            AccessEvent::new(SeqNo(1), ClientId(0), FileId(2), AccessKind::Write),
            AccessEvent::new(SeqNo(2), ClientId(1), FileId(3), AccessKind::Create),
            AccessEvent::new(SeqNo(3), ClientId(1), FileId(3), AccessKind::Delete),
        ]
        .into_iter()
        .collect();
        let s = TraceStats::compute(&t);
        assert_eq!((s.reads, s.writes, s.creates, s.deletes), (1, 1, 1, 1));
        assert_eq!(s.clients, 2);
        assert_eq!(s.repeat_accesses, 1);
        assert_eq!(s.mutation_fraction(), 0.75);
    }

    #[test]
    fn repeat_and_singletons() {
        let t = Trace::from_files([5, 5, 5, 6]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.unique_files, 2);
        assert_eq!(s.singleton_files, 1);
        assert_eq!(s.max_file_accesses, 3);
        assert_eq!(s.repeat_accesses, 2);
        assert!((s.repeat_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_percent_share_bounds() {
        let t = Trace::from_files((0..1000).map(|i| i % 37));
        let s = TraceStats::compute(&t);
        assert!(s.top_percent_share > 0.0 && s.top_percent_share <= 1.0);
    }

    #[test]
    fn write_profile_has_more_mutations_than_server() {
        let make = |p| {
            TraceStats::compute(
                &SynthConfig::profile(p)
                    .events(8_000)
                    .seed(3)
                    .build()
                    .unwrap()
                    .generate(),
            )
        };
        let write = make(WorkloadProfile::Write);
        let server = make(WorkloadProfile::Server);
        assert!(write.mutation_fraction() > server.mutation_fraction() * 2.0);
        assert!(write.creates > server.creates);
    }

    #[test]
    fn synthetic_workloads_repeat_heavily() {
        for p in WorkloadProfile::ALL {
            let t = SynthConfig::profile(p)
                .events(10_000)
                .seed(1)
                .build()
                .unwrap()
                .generate();
            let s = TraceStats::compute(&t);
            assert!(
                s.repeat_fraction() > 0.5,
                "{p}: repeat fraction {}",
                s.repeat_fraction()
            );
        }
    }

    #[test]
    fn report_is_nonempty() {
        let s = TraceStats::compute(&Trace::from_files([1, 2]));
        assert!(s.report().contains("events 2"));
    }
}

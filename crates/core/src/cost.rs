//! The first-order I/O cost model shared by the analytic sweeps and the
//! fetch transports.
//!
//! The paper's motivation for grouping is latency: every remote fetch
//! pays a per-request round trip, so fetching `g` related files in one
//! request amortises it — at the price of transferring speculative files
//! that may never be used. This model quantifies that trade:
//!
//! ```text
//! total_time = demand_fetches × request_latency
//!            + files_transferred × transfer_time
//!            + size_units_transferred × transfer_per_unit
//! ```
//!
//! which is the standard first-order model for whole-file transfers over
//! a network with per-request overhead. The first two terms are the
//! paper's fixed-size model; the third prices the *bytes* actually moved
//! once files carry sizes (see `fgcache_types::sizing`), and is zero in
//! the stock regimes so every fixed-cost number is unchanged. With
//! `request_latency ≫ transfer_time` (the distributed-file-system regime
//! the paper targets), grouping wins decisively; as transfer cost grows,
//! large groups stop paying.
//!
//! The model lives in `fgcache-core` (rather than `fgcache-sim`, where
//! the sweeps that price runs with it live) so that `fgcache-net`'s
//! simulated transport can advance its virtual clock with *the same*
//! latency knobs the analytic tables use — one definition, no drift.
//! `fgcache_sim::cost` re-exports it under its historical path.

use fgcache_types::ValidationError;

/// Per-operation costs, in arbitrary time units (only ratios matter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost of one fetch request (round-trip latency + server
    /// request handling).
    pub request_latency: f64,
    /// Cost of transferring one file's data (per-file overhead:
    /// headers, metadata, per-file server work).
    pub transfer_time: f64,
    /// Cost of transferring one *size unit* of file data. Zero in the
    /// fixed-size regimes ([`CostModel::remote`], [`CostModel::lan`]),
    /// where per-file cost already covers the uniform payload; positive
    /// in sized regimes ([`CostModel::remote_sized`]) so large files
    /// cost proportionally more to move.
    pub transfer_per_unit: f64,
}

impl CostModel {
    /// A distributed-file-system-like regime: a request round trip costs
    /// ten file transfers (small files, wide-area or congested links).
    pub fn remote() -> Self {
        CostModel {
            request_latency: 10.0,
            transfer_time: 1.0,
            transfer_per_unit: 0.0,
        }
    }

    /// The remote regime with byte pricing: the same 10:1 round trip,
    /// plus one time unit per size unit moved. With every file at size 1
    /// this prices each transfer at 2.0 (per-file overhead + payload);
    /// a 64-unit file costs 65.0 to move.
    pub fn remote_sized() -> Self {
        CostModel {
            request_latency: 10.0,
            transfer_time: 1.0,
            transfer_per_unit: 1.0,
        }
    }

    /// A local-area regime: round trip worth two transfers.
    pub fn lan() -> Self {
        CostModel {
            request_latency: 2.0,
            transfer_time: 1.0,
            transfer_per_unit: 0.0,
        }
    }

    /// Validates the model (both costs finite and non-negative, not both
    /// zero).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (name, v) in [
            ("request_latency", self.request_latency),
            ("transfer_time", self.transfer_time),
            ("transfer_per_unit", self.transfer_per_unit),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ValidationError::new(name, "must be finite and >= 0"));
            }
        }
        if self.request_latency == 0.0 && self.transfer_time == 0.0 && self.transfer_per_unit == 0.0
        {
            return Err(ValidationError::new(
                "cost model",
                "at least one cost must be positive",
            ));
        }
        Ok(())
    }

    /// Total I/O time for a run that made `fetches` requests moving
    /// `files` files, ignoring payload sizes (every fixed-cost caller).
    pub fn total(&self, fetches: u64, files: u64) -> f64 {
        self.total_sized(fetches, files, 0)
    }

    /// Total I/O time for a run that made `fetches` requests moving
    /// `files` files totalling `size_units` of data.
    pub fn total_sized(&self, fetches: u64, files: u64, size_units: u64) -> f64 {
        fetches as f64 * self.request_latency
            + files as f64 * self.transfer_time
            + size_units as f64 * self.transfer_per_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_validation() {
        assert!(CostModel::remote().validate().is_ok());
        assert!(CostModel::lan().validate().is_ok());
        assert!(CostModel::remote_sized().validate().is_ok());
        assert!(CostModel {
            request_latency: -1.0,
            transfer_time: 1.0,
            transfer_per_unit: 0.0
        }
        .validate()
        .is_err());
        assert!(CostModel {
            request_latency: f64::NAN,
            transfer_time: 1.0,
            transfer_per_unit: 0.0
        }
        .validate()
        .is_err());
        assert!(CostModel {
            request_latency: 1.0,
            transfer_time: 1.0,
            transfer_per_unit: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(CostModel {
            request_latency: 0.0,
            transfer_time: 0.0,
            transfer_per_unit: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn total_is_linear() {
        let m = CostModel {
            request_latency: 10.0,
            transfer_time: 2.0,
            transfer_per_unit: 0.5,
        };
        assert_eq!(m.total(3, 7), 44.0); // size-blind: payload term unused
        assert_eq!(m.total_sized(3, 7, 10), 49.0);
        assert_eq!(m.total(0, 0), 0.0);
        assert_eq!(m.total_sized(0, 0, 0), 0.0);
    }

    #[test]
    fn stock_regimes_price_bytes_at_zero() {
        // Backwards compatibility: the regimes every existing sweep uses
        // must produce identical totals whether or not sizes are known.
        for m in [CostModel::remote(), CostModel::lan()] {
            assert_eq!(m.total(5, 12), m.total_sized(5, 12, 9999));
        }
        let s = CostModel::remote_sized();
        assert_eq!(s.total_sized(1, 1, 64), 75.0);
    }
}

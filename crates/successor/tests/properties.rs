//! Deterministic model-based tests for successor lists, tables and groups.
//!
//! Each test sweeps a fixed set of seeds through the in-repo PRNG, so a
//! failure reproduces exactly from the printed seed — no external
//! property-testing framework and no shrinking needed.

use fgcache_successor::eval::evaluate_replacement;
use fgcache_successor::{
    DecayedSuccessorList, GroupBuilder, LfuSuccessorList, LruSuccessorList, OracleSuccessorList,
    ProbabilityGraph, RelationshipGraph, SuccessorList, SuccessorTable,
};
use fgcache_trace::Trace;
use fgcache_types::rng::RandomSource;
use fgcache_types::{FileId, SeededRng};

const SEEDS: [u64; 8] = [0, 1, 2, 7, 42, 1234, 0xDEAD_BEEF, u64::MAX];

/// A random access sequence over a small universe (files 0..15), length
/// 0..300 — the same shape the old proptest strategy produced.
fn file_seq(rng: &mut SeededRng) -> Vec<u64> {
    let len = rng.gen_index(300);
    (0..len).map(|_| rng.gen_range_inclusive(0, 14)).collect()
}

/// Checks the invariants shared by all list implementations.
fn check_list_invariants<L: SuccessorList>(mut list: L, observations: &[u64]) {
    for &f in observations {
        list.observe(FileId(f));
        if let Some(cap) = list.capacity() {
            assert!(list.len() <= cap, "list exceeded capacity");
        }
        // The most recent observation is the most likely for LRU-style
        // lists; at minimum it must be *contained*.
        assert!(list.contains(FileId(f)), "just-observed successor missing");
        // ranked() is consistent with contains()/len().
        let ranked = list.ranked();
        assert_eq!(ranked.len(), list.len());
        let mut sorted = ranked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ranked.len(), "ranked() contains duplicates");
        for f in ranked {
            assert!(list.contains(f));
        }
        assert_eq!(list.ranked().first().copied(), list.most_likely());
    }
}

#[test]
fn bounded_list_invariants() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for cap in 1..8 {
            let obs = file_seq(&mut rng);
            check_list_invariants(LruSuccessorList::new(cap).unwrap(), &obs);
            check_list_invariants(LfuSuccessorList::new(cap).unwrap(), &obs);
            let decay = 0.05 + 0.95 * rng.next_f64();
            check_list_invariants(DecayedSuccessorList::new(cap, decay).unwrap(), &obs);
        }
    }
}

#[test]
fn oracle_list_invariants() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let obs = file_seq(&mut rng);
        check_list_invariants(OracleSuccessorList::new(), &obs);
    }
}

#[test]
fn oracle_remembers_everything() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let obs = file_seq(&mut rng);
        let mut oracle = OracleSuccessorList::new();
        for &f in &obs {
            oracle.observe(FileId(f));
        }
        for &f in &obs {
            assert!(oracle.contains(FileId(f)), "seed {seed}");
        }
        let mut unique: Vec<u64> = obs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(oracle.len(), unique.len(), "seed {seed}");
    }
}

#[test]
fn lru_list_is_sliding_window_of_distinct_recents() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for cap in 1..6 {
            let obs = file_seq(&mut rng);
            let mut list = LruSuccessorList::new(cap).unwrap();
            for &f in &obs {
                list.observe(FileId(f));
            }
            // Expected contents: the `cap` most recent *distinct*
            // observations, in reverse observation order.
            let mut expected: Vec<FileId> = Vec::new();
            for &f in obs.iter().rev() {
                let id = FileId(f);
                if !expected.contains(&id) {
                    expected.push(id);
                }
                if expected.len() == cap {
                    break;
                }
            }
            assert_eq!(list.ranked(), expected, "seed {seed} cap {cap}");
        }
    }
}

#[test]
fn table_chain_has_no_duplicates_and_excludes_start() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for cap in 1..5 {
            let obs = file_seq(&mut rng);
            let n = rng.gen_index(12);
            let mut table = SuccessorTable::new(LruSuccessorList::new(cap).unwrap());
            for &f in &obs {
                table.record(FileId(f));
            }
            table
                .check_invariants()
                .unwrap_or_else(|v| panic!("seed {seed} cap {cap}: {v}"));
            for start in 0u64..15 {
                let chain = table.predict_chain(FileId(start), n);
                assert!(chain.len() <= n);
                assert!(!chain.contains(&FileId(start)));
                let mut sorted = chain.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), chain.len(), "duplicate in chain");
            }
        }
    }
}

#[test]
fn groups_are_well_formed() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for g in 1..8 {
            let obs = file_seq(&mut rng);
            let mut table = SuccessorTable::new(LruSuccessorList::new(3).unwrap());
            for &f in &obs {
                table.record(FileId(f));
            }
            let builder = GroupBuilder::new(g).unwrap();
            for start in 0u64..15 {
                let group = builder.build(&table, FileId(start));
                assert!(!group.is_empty() && group.len() <= g);
                assert_eq!(group.requested(), FileId(start));
                assert!(group.contains(FileId(start)));
                let mut sorted: Vec<FileId> = group.files().to_vec();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), group.len(), "duplicate group member");
            }
        }
    }
}

#[test]
fn oracle_lower_bounds_every_policy() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for cap in 1..6 {
            let len = 2 + rng.gen_index(398);
            let obs: Vec<u64> = (0..len).map(|_| rng.gen_range_inclusive(0, 9)).collect();
            let trace = Trace::from_files(obs);
            let oracle = evaluate_replacement(&trace, OracleSuccessorList::new());
            let lru = evaluate_replacement(&trace, LruSuccessorList::new(cap).unwrap());
            let lfu = evaluate_replacement(&trace, LfuSuccessorList::new(cap).unwrap());
            let dec = evaluate_replacement(&trace, DecayedSuccessorList::new(cap, 0.5).unwrap());
            assert!(oracle.misses <= lru.misses, "seed {seed} cap {cap}");
            assert!(oracle.misses <= lfu.misses, "seed {seed} cap {cap}");
            assert!(oracle.misses <= dec.misses, "seed {seed} cap {cap}");
            assert_eq!(oracle.transitions, lru.transitions);
        }
    }
}

#[test]
fn evaluation_miss_probability_in_unit_range() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let len = rng.gen_index(300);
        let obs: Vec<u64> = (0..len).map(|_| rng.gen_range_inclusive(0, 11)).collect();
        let trace = Trace::from_files(obs);
        let r = evaluate_replacement(&trace, LruSuccessorList::new(2).unwrap());
        let p = r.miss_probability();
        assert!((0.0..=1.0).contains(&p));
        assert!(r.misses <= r.transitions);
    }
}

#[test]
fn graph_weights_match_transition_counts() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let obs = file_seq(&mut rng);
        let mut graph = RelationshipGraph::new();
        graph.record_sequence(obs.iter().map(|&f| FileId(f)));
        // Total edge weight == number of transitions.
        let total: u64 = (0u64..15)
            .flat_map(|a| (0u64..15).map(move |b| (a, b)))
            .map(|(a, b)| graph.weight(FileId(a), FileId(b)))
            .sum();
        assert_eq!(total as usize, obs.len().saturating_sub(1));
        // Node access counts sum to the sequence length.
        let nodes: u64 = (0u64..15).map(|f| graph.access_count(FileId(f))).sum();
        assert_eq!(nodes as usize, obs.len());
    }
}

#[test]
fn covering_groups_cover_every_file_with_successors() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for size in 1..6 {
            let obs = file_seq(&mut rng);
            let mut graph = RelationshipGraph::new();
            graph.record_sequence(obs.iter().map(|&f| FileId(f)));
            let groups = graph.covering_groups(size);
            for pair in obs.windows(2) {
                let head = FileId(pair[0]);
                assert!(
                    groups.iter().any(|g| g.contains(head)),
                    "file with successors left uncovered (seed {seed})"
                );
            }
            for g in &groups {
                assert!(g.len() <= size.max(1));
            }
        }
    }
}

#[test]
fn probability_graph_distributions_normalised() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for window in 1..6 {
            let obs = file_seq(&mut rng);
            let mut pg = ProbabilityGraph::new(window, 0.0).unwrap();
            for &f in &obs {
                pg.record(FileId(f));
            }
            for a in 0u64..15 {
                let total: f64 = (0u64..15)
                    .map(|b| pg.probability(FileId(a), FileId(b)))
                    .sum();
                assert!(total <= 1.0 + 1e-9);
                // Either nothing observed (0) or a full distribution (1).
                assert!(total < 1e-9 || (total - 1.0).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn table_audit_holds_under_random_streams() {
    // Long randomized streams with occasional sequence breaks; the
    // table's self-audit must hold throughout.
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let mut table = SuccessorTable::new(LruSuccessorList::new(4).unwrap());
        for step in 0..2_000 {
            if rng.chance(0.01) {
                table.break_sequence();
            } else {
                table.record(FileId(rng.gen_range_inclusive(0, 40)));
            }
            if step % 64 == 0 {
                table
                    .check_invariants()
                    .unwrap_or_else(|v| panic!("seed {seed} step {step}: {v}"));
            }
        }
        table
            .check_invariants()
            .unwrap_or_else(|v| panic!("seed {seed} final: {v}"));
    }
}

//! Cross-crate tests of the paper's *minimal metadata* claims (§3, §5):
//! the aggregating cache must deliver its gains with per-file state that
//! stays small, bounded and cheap — that is the argument for grouping
//! over heavier prefetchers.

use fgcache::cache::Cache;
use fgcache::core::AggregatingCacheBuilder;
use fgcache::prelude::*;
use fgcache::successor::{LruSuccessorList, ProbabilityGraph};
use fgcache::trace::stats::TraceStats;

fn workload(profile: WorkloadProfile) -> Trace {
    SynthConfig::profile(profile)
        .events(40_000)
        .seed(31)
        .build()
        .unwrap()
        .generate()
}

#[test]
fn metadata_is_linear_in_files_not_accesses() {
    // Double the trace length; the metadata footprint must grow far more
    // slowly than the event count (it is bounded by files × capacity).
    let short = SynthConfig::profile(WorkloadProfile::Workstation)
        .events(20_000)
        .seed(31)
        .build()
        .unwrap()
        .generate();
    let long = SynthConfig::profile(WorkloadProfile::Workstation)
        .events(40_000)
        .seed(31)
        .build()
        .unwrap()
        .generate();
    let footprint = |t: &Trace| {
        let mut cache = AggregatingCacheBuilder::new(300)
            .group_size(5)
            .build()
            .unwrap();
        for ev in t.events() {
            cache.handle_access(ev.file);
        }
        cache.metadata_entries()
    };
    let short_entries = footprint(&short) as f64;
    let long_entries = footprint(&long) as f64;
    // Events doubled; metadata grows sub-linearly (new files only).
    assert!(
        long_entries < short_entries * 1.8,
        "metadata grew {short_entries} → {long_entries} on 2× events"
    );
}

#[test]
fn successor_capacity_bounds_hold_on_every_profile() {
    for profile in WorkloadProfile::ALL {
        let trace = workload(profile);
        let cap = 4;
        let mut table = SuccessorTable::new(LruSuccessorList::new(cap).unwrap());
        for ev in trace.events() {
            table.record(ev.file);
        }
        let stats = TraceStats::compute(&trace);
        assert!(table.tracked_files() <= stats.unique_files, "{profile}");
        assert!(
            table.metadata_entries() <= table.tracked_files() * cap,
            "{profile}"
        );
        // The paper's observation: the realised mean is far below the cap.
        let mean = table.metadata_entries() as f64 / table.tracked_files().max(1) as f64;
        assert!(mean < cap as f64 * 0.9, "{profile}: mean {mean}");
    }
}

#[test]
fn aggregating_cache_metadata_is_fraction_of_probability_graph() {
    let trace = workload(WorkloadProfile::Workstation);
    let mut agg = AggregatingCacheBuilder::new(300)
        .group_size(5)
        .build()
        .unwrap();
    let mut pg = ProbabilityGraph::new(4, 0.05).unwrap();
    for ev in trace.events() {
        agg.handle_access(ev.file);
        pg.record(ev.file);
    }
    assert!(
        agg.metadata_entries() * 2 < pg.edge_count(),
        "successor entries {} vs windowed edges {}",
        agg.metadata_entries(),
        pg.edge_count()
    );
}

#[test]
fn bandwidth_overhead_is_bounded_by_group_size() {
    // Group fetching may move extra files, but never more than g per
    // demand fetch — and the prefetch accuracy keeps realised overhead
    // well below the worst case.
    for g in [2usize, 5, 10] {
        let trace = workload(WorkloadProfile::Server);
        let mut cache = AggregatingCacheBuilder::new(300)
            .group_size(g)
            .build()
            .unwrap();
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        let s = cache.group_stats();
        assert!(s.files_transferred <= s.demand_fetches * g as u64);
        assert!(s.files_transferred >= s.demand_fetches);
        // Useful prefetches: at least a third of speculative transfers
        // get demand-hit on this predictable workload.
        let stats = Cache::stats(&cache);
        assert!(
            stats.speculative_accuracy() > 0.33,
            "g{g}: accuracy {}",
            stats.speculative_accuracy()
        );
    }
}

#[test]
fn groups_stay_within_configured_size_under_churn() {
    let trace = workload(WorkloadProfile::Write);
    let mut cache = AggregatingCacheBuilder::new(200)
        .group_size(7)
        .build()
        .unwrap();
    for ev in trace.events() {
        cache.handle_access(ev.file);
    }
    let mean = cache.group_stats().mean_group_size();
    assert!((1.0..=7.0).contains(&mean), "mean group size {mean}");
}

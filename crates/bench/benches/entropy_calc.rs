//! Throughput of the successor-entropy analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgcache_entropy::{filtered_entropy, successor_sequence_entropy};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use std::hint::black_box;

const EVENTS: usize = 20_000;

fn bench_entropy(c: &mut Criterion) {
    let trace = SynthConfig::profile(WorkloadProfile::Users)
        .events(EVENTS)
        .seed(3)
        .build()
        .expect("profile is valid")
        .generate();
    let files = trace.file_sequence();
    let mut group = c.benchmark_group("successor_entropy");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for k in [1usize, 4, 12, 20] {
        group.bench_with_input(BenchmarkId::new("k", k), &files, |b, files| {
            b.iter(|| successor_sequence_entropy(black_box(files), k).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("filtered_entropy");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for cap in [10usize, 500] {
        group.bench_with_input(BenchmarkId::new("filter", cap), &trace, |b, t| {
            b.iter(|| filtered_entropy(black_box(t), cap, 1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_entropy);
criterion_main!(benches);

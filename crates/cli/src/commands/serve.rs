//! `fgcache serve` — run a TCP group-fetch server over a sharded
//! aggregating cache.
//!
//! ```text
//! fgcache serve --capacity 400 [--addr 127.0.0.1:0] [--shards 4]
//!               [--group 5] [--successors 8]
//! ```
//!
//! The server prints `listening on HOST:PORT` (useful with port 0, which
//! binds an ephemeral port) and then blocks until a client sends the
//! wire-protocol `Shutdown` message — which `fgcache bench-net` does, and
//! which any `NetClient::send_shutdown` call can do.

use std::error::Error;
use std::sync::Arc;

use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::BoundServer;

use crate::args::Args;

/// Builds the server-side cache from the parsed flags (separated from
/// `run` so validation is unit-testable without binding sockets).
pub(crate) fn build_cache(
    capacity: usize,
    shards: usize,
    group: usize,
    successors: usize,
) -> Result<ShardedAggregatingCache, Box<dyn Error>> {
    Ok(ShardedAggregatingCacheBuilder::new(capacity)
        .shards(shards)
        .group_size(group)
        .successor_capacity(successors)
        .build()?)
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["addr", "capacity", "shards", "group", "successors"])?;
    let capacity: usize = args.require_flag("capacity")?;
    let shards = args.flag_or("shards", 4usize)?;
    let group = args.flag_or("group", 5usize)?;
    let successors = args.flag_or("successors", 8usize)?;
    let addr = args.flag("addr").unwrap_or("127.0.0.1:0");

    let cache = Arc::new(build_cache(capacity, shards, group, successors)?);
    let server = BoundServer::bind(addr, cache).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("listening on {}", server.local_addr());
    server.run();
    println!("server stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_flags_are_validated() {
        assert!(build_cache(400, 4, 5, 8).is_ok());
        // Slices below the group size are fine (each shard clamps its
        // group size to what it can hold); only configs where the total
        // capacity cannot fit a group, or a shard cannot hold one file,
        // are rejected.
        assert!(build_cache(30, 16, 5, 8).is_ok());
        assert!(build_cache(30, 16, 31, 8).is_err());
        assert!(build_cache(8, 16, 5, 8).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let tokens: Vec<String> = vec![
            "--capacity".into(),
            "10".into(),
            "--oops".into(),
            "1".into(),
        ];
        assert!(run(&tokens).is_err());
    }

    #[test]
    fn capacity_is_required() {
        let tokens: Vec<String> = vec![];
        assert!(run(&tokens).is_err());
    }
}

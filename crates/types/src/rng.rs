//! Small, seeded, in-repo pseudo-random number generation.
//!
//! The workspace is hermetic (std-only, no crate registry at build time),
//! so instead of the `rand` crate the synthetic workload generator and the
//! test suites use this module: a [`SplitMix64`] seeder feeding a
//! xoshiro256\*\*-style generator, [`SeededRng`].
//!
//! Determinism is a hard API guarantee: the same seed always yields the
//! same stream, on every platform, forever. Golden-value tests in
//! `fgcache-trace` pin concrete outputs of this generator; changing the
//! algorithm is a breaking change to every reproduced figure.
//!
//! # Examples
//!
//! ```
//! use fgcache_types::rng::{RandomSource, SeededRng};
//!
//! let mut rng = SeededRng::new(42);
//! let a = rng.next_u64();
//! let mut again = SeededRng::new(42);
//! assert_eq!(again.next_u64(), a);
//! ```

/// A source of uniformly distributed random `u64`s, with derived helpers.
///
/// Only [`RandomSource::next_u64`] is required; every other method is
/// defined in terms of it. The trait exists so that samplers (for example
/// `fgcache-trace`'s Zipf sampler) stay generic over the generator, which
/// keeps them testable with fixed-output stub generators.
pub trait RandomSource {
    /// Returns the next uniformly distributed 64-bit value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)` with 53 bits of
    /// precision (the full mantissa of an IEEE-754 double).
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniformly distributed value in `[lo, hi]` (inclusive).
    ///
    /// Uses rejection sampling to avoid modulo bias. `lo > hi` is treated
    /// as the single-point range `[lo, lo]`.
    fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        let span = hi - lo + 1; // no overflow: lo < hi ⇒ span ≥ 2
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, n)`; `n` must be
    /// non-zero (a zero `n` yields `0`).
    fn gen_index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        self.gen_range_inclusive(0, n as u64 - 1) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }
}

/// The SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Fast, tiny state, and — crucially — sound for *seeding*: any two
/// distinct seeds yield uncorrelated streams, which is why it is the
/// standard bootstrap for xoshiro-family state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. All seeds are valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's default seeded generator: xoshiro256\*\* (Blackman &
/// Vigna, 2018), bootstrapped from a 64-bit seed via [`SplitMix64`].
///
/// 256 bits of state, period 2²⁵⁶ − 1, and excellent statistical quality —
/// far beyond what trace synthesis needs, at a few ALU ops per draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed. All seeds are valid: the
    /// SplitMix64 bootstrap guarantees a non-zero xoshiro state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SeededRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl RandomSource for SeededRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream for seed 0 (Vigna's splitmix64.c).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = SeededRng::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_inclusive_and_covers() {
        let mut rng = SeededRng::new(5);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range_inclusive(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_ranges() {
        let mut rng = SeededRng::new(5);
        assert_eq!(rng.gen_range_inclusive(3, 3), 3);
        assert_eq!(rng.gen_range_inclusive(7, 2), 7);
        assert_eq!(rng.gen_index(0), 0);
        assert_eq!(rng.gen_index(1), 0);
    }

    #[test]
    fn choose_on_empty_and_singleton() {
        let mut rng = SeededRng::new(1);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42u8]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(77);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_plausible() {
        let mut rng = SeededRng::new(2024);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }
}

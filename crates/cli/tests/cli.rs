//! End-to-end tests of the `fgcache` binary, driving it as a subprocess.

use std::process::{Command, Output};

fn fgcache(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fgcache"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("fgcache-cli-test-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = fgcache(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = fgcache(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("two-level"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = fgcache(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_pipeline_text_format() {
    let trace = tmp("pipeline.txt");
    let out = fgcache(&[
        "gen",
        "--profile",
        "server",
        "--events",
        "4000",
        "--seed",
        "9",
        "--out",
        &trace,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 4000 events"));

    let out = fgcache(&["stats", &trace]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("events            4000"));

    let out = fgcache(&["entropy", &trace, "--max-k", "3"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("bits"));

    let out = fgcache(&["simulate", &trace, "--capacity", "200", "--policy", "agg"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("demand fetches"));

    let out = fgcache(&["simulate", &trace, "--capacity", "200", "--policy", "arc"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("arc cache"));

    let out = fgcache(&[
        "simulate",
        &trace,
        "--capacity",
        "200",
        "--clients",
        "4",
        "--shards",
        "2",
        "--filter",
        "50",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("2 shard(s)"), "{text}");
    assert!(text.contains("shard imbalance"), "{text}");
    // The multi-client run is deterministic: a second run reports
    // byte-identical output.
    let again = fgcache(&[
        "simulate",
        &trace,
        "--capacity",
        "200",
        "--clients",
        "4",
        "--shards",
        "2",
        "--filter",
        "50",
    ]);
    assert_eq!(out.stdout, again.stdout);

    // Sharded mode rejects plain policies.
    let out = fgcache(&[
        "simulate",
        &trace,
        "--capacity",
        "200",
        "--clients",
        "2",
        "--policy",
        "lru",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--policy agg"));

    let out = fgcache(&[
        "two-level",
        &trace,
        "--filter",
        "50,150",
        "--server",
        "100",
        "--scheme",
        "g5,lru",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("g5") && text.contains("lru"), "{text}");

    let out = fgcache(&["groups", &trace, "--top", "3"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("relationship graph"));

    std::fs::remove_file(&trace).ok();
}

#[test]
fn binary_format_roundtrips_through_cli() {
    let trace = tmp("pipeline.bin");
    let out = fgcache(&[
        "gen", "--events", "1000", "--seed", "2", "--out", &trace, "--format", "bin",
    ]);
    assert!(out.status.success());
    // Extension-based autodetection.
    let out = fgcache(&["stats", &trace]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("events            1000"));
    // Explicit override also works.
    let out = fgcache(&["stats", &trace, "--format", "bin"]);
    assert!(out.status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn bad_flags_fail_with_messages() {
    let out = fgcache(&["simulate", "/nonexistent", "--capacity", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    let trace = tmp("badflags.txt");
    assert!(fgcache(&["gen", "--events", "100", "--out", &trace])
        .status
        .success());
    let out = fgcache(&["simulate", &trace]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--capacity"));

    let out = fgcache(&["simulate", &trace, "--capacity", "10", "--wat", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    std::fs::remove_file(&trace).ok();
}

//! `fgcache stats` — summarise a trace.
//!
//! Statistics are computed in a single streaming pass
//! ([`TraceStatsBuilder`]) so multi-gigabyte traces summarise in memory
//! bounded by their distinct-file count, not their length.

use std::error::Error;

use fgcache_trace::io::TraceIoError;
use fgcache_trace::stats::{TraceStats, TraceStatsBuilder};
#[cfg(test)]
use fgcache_trace::Trace;
use fgcache_types::AccessEvent;

use crate::args::Args;
use crate::commands::open_trace_events;

#[cfg(test)] // the materialized twin survives as the differential-test oracle
pub(crate) fn report(trace: &Trace) -> String {
    render(&TraceStats::compute(trace))
}

/// Streaming twin of [`report`]: consumes the events once, never holding
/// more than the builder's distinct-file table.
pub(crate) fn report_events<I>(events: I) -> Result<String, TraceIoError>
where
    I: IntoIterator<Item = Result<AccessEvent, TraceIoError>>,
{
    let mut builder = TraceStatsBuilder::new();
    for ev in events {
        builder.push(&ev?);
    }
    Ok(render(&builder.finish()))
}

fn render(s: &TraceStats) -> String {
    let mut out = String::new();
    out.push_str(&format!("events            {}\n", s.events));
    out.push_str(&format!("unique files      {}\n", s.unique_files));
    out.push_str(&format!("clients           {}\n", s.clients));
    out.push_str(&format!(
        "kinds             R {} / W {} / C {} / D {}\n",
        s.reads, s.writes, s.creates, s.deletes
    ));
    out.push_str(&format!(
        "repeat fraction   {:.1}%\n",
        s.repeat_fraction() * 100.0
    ));
    out.push_str(&format!(
        "mutation fraction {:.1}%\n",
        s.mutation_fraction() * 100.0
    ));
    out.push_str(&format!("singleton files   {}\n", s.singleton_files));
    out.push_str(&format!("hottest file hits {}\n", s.max_file_accesses));
    out.push_str(&format!(
        "top-1% share      {:.1}%\n",
        s.top_percent_share * 100.0
    ));
    out
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["format"])?;
    let path = args.require_positional(0, "trace")?;
    let events = open_trace_events(path, args.flag("format"))?;
    print!("{}", report_events(events)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_key_lines() {
        let trace = Trace::from_files([1, 2, 1, 3]);
        let text = report(&trace);
        assert!(text.contains("events            4"));
        assert!(text.contains("unique files      3"));
    }

    #[test]
    fn report_events_matches_materialized_report() {
        let trace = Trace::from_files((0..200u64).map(|i| i % 13));
        let streamed = report_events(
            trace
                .events()
                .iter()
                .map(|ev| Ok::<AccessEvent, TraceIoError>(*ev)),
        )
        .unwrap();
        assert_eq!(streamed, report(&trace));
    }

    #[test]
    fn report_events_propagates_reader_errors() {
        let events = vec![
            Ok(AccessEvent::read(0, 1)),
            Err(TraceIoError::Validation(
                fgcache_types::ValidationError::new("events", "boom"),
            )),
        ];
        assert!(report_events(events).is_err());
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&["/nonexistent/trace.txt".to_string()]).unwrap_err();
        assert!(err.to_string().contains("cannot open"));
    }

    #[test]
    fn missing_positional_is_reported() {
        let err = run(&[]).unwrap_err();
        assert!(err.to_string().contains("<trace>"));
    }
}

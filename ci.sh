#!/usr/bin/env sh
# The canonical local quality gate. Every step must pass before a push;
# the same sequence is available as `cargo run -p xtask -- ci`.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -p xtask -- lint

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> loopback smoke: bench-net differential check (byte-exact vs in-process)"
./target/release/fgcache bench-net --loopback true --clients 2 --events 2000 \
    --capacity 200 --shards 2 --batch 1,8 --seed 2002

echo "==> cargo run -p xtask -- bench-smoke (run-only perf gate, no thresholds)"
cargo run -p xtask -- bench-smoke

echo "==> cargo run -p xtask -- fuzz"
cargo run -p xtask -- fuzz

echo "ci.sh: all steps passed"

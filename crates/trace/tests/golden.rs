//! Golden-value tests pinning the synthetic-trace byte streams.
//!
//! Reproduced figures must be bit-identical across runs and machines, so
//! these tests pin concrete outputs of the seeded generator stack: the raw
//! PRNG stream, the Zipf sampler, and the first events of each workload
//! profile. If any of these fail, the generator's output has changed and
//! every figure produced from synthetic traces is invalidated — bump the
//! figures deliberately or fix the regression.

use fgcache_trace::synth::{SynthConfig, WorkloadProfile, Zipf};
use fgcache_types::rng::{RandomSource, SeededRng};

/// First 16 file ids and access-kind codes of a profile's trace at seed 42.
fn head(profile: WorkloadProfile) -> (Vec<u64>, String) {
    let t = SynthConfig::profile(profile)
        .events(16)
        .seed(42)
        .build()
        .unwrap()
        .generate();
    (
        t.events().iter().map(|e| e.file.as_u64()).collect(),
        t.events().iter().map(|e| e.kind.code()).collect(),
    )
}

#[test]
fn seeded_rng_stream_is_pinned() {
    let mut rng = SeededRng::new(42);
    let raw: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
    assert_eq!(
        raw,
        [
            1546998764402558742,
            6990951692964543102,
            12544586762248559009,
            17057574109182124193,
            18295552978065317476,
            14199186830065750584,
            13267978908934200754,
            15679888225317814407,
        ]
    );
}

#[test]
fn zipf_sample_stream_is_pinned() {
    let z = Zipf::new(100, 1.0).unwrap();
    let mut rng = SeededRng::new(7);
    let samples: Vec<usize> = (0..16).map(|_| z.sample(&mut rng)).collect();
    assert_eq!(
        samples,
        [20, 1, 43, 90, 95, 51, 0, 0, 4, 0, 8, 24, 72, 53, 5, 9]
    );
}

#[test]
fn workstation_head_is_pinned() {
    let (files, kinds) = head(WorkloadProfile::Workstation);
    assert_eq!(
        files,
        [103, 1, 17, 104, 104, 3, 105, 17, 106, 107, 107, 108, 108, 108, 109, 30]
    );
    assert_eq!(kinds, "RRRRRRRRWRWRRRRR");
}

#[test]
fn users_head_is_pinned() {
    let (files, kinds) = head(WorkloadProfile::Users);
    assert_eq!(
        files,
        [663, 664, 664, 664, 665, 666, 3, 1051, 811, 812, 812, 812, 813, 2817, 2817, 2818]
    );
    assert_eq!(kinds, "RRRRRRWRWRRRRRRR");
}

#[test]
fn write_head_is_pinned() {
    let (files, kinds) = head(WorkloadProfile::Write);
    assert_eq!(
        files,
        [30, 31, 31, 69, 69, 70, 71, 72, 73, 70, 74, 75, 75, 75, 76, 1209]
    );
    assert_eq!(kinds, "RWRRWRWRWRWRWWRR");
}

#[test]
fn server_head_is_pinned() {
    let (files, kinds) = head(WorkloadProfile::Server);
    assert_eq!(
        files,
        [20, 20, 20, 20, 21, 21, 21, 21, 21, 21, 21, 21, 21, 21, 21, 22]
    );
    assert_eq!(kinds, "RRRRRWRRRRRRRRRR");
}

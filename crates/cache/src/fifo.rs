//! First-in-first-out cache.
//!
//! A deliberately simple baseline: residency order is insertion order and
//! hits do not refresh anything. Useful as a lower bound when studying how
//! much recency information is worth.

use fgcache_types::hash::FastMap;
use std::collections::VecDeque;

use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::{Cache, CacheStats};

/// A FIFO cache of [`FileId`]s.
///
/// Speculative inserts are queued at the *front* (evicted first), mirroring
/// the "lowest retention priority" contract of
/// [`Cache::insert_speculative`].
///
/// ```
/// use fgcache_cache::{Cache, FifoCache};
/// use fgcache_types::FileId;
///
/// let mut c = FifoCache::new(2);
/// c.access(FileId(1));
/// c.access(FileId(2));
/// c.access(FileId(1)); // hit, but does NOT refresh insertion order
/// c.access(FileId(3)); // evicts 1 (oldest insertion)
/// assert!(!c.contains(FileId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FifoCache {
    capacity: usize,
    // Front = next eviction victim.
    queue: VecDeque<FileId>,
    resident: FastMap<FileId, bool>, // value: still speculative?
    stats: CacheStats,
}

impl FifoCache {
    /// Creates a FIFO cache holding at most `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        FifoCache {
            capacity,
            queue: VecDeque::with_capacity(capacity.min(1 << 20)),
            resident: FastMap::default(),
            stats: CacheStats::new(),
        }
    }

    fn evict_front(&mut self) {
        if let Some(victim) = self.queue.pop_front() {
            self.resident.remove(&victim);
            self.stats.record_eviction();
        }
    }
}

impl Cache for FifoCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        if let Some(spec) = self.resident.get_mut(&file) {
            let was_speculative = std::mem::replace(spec, false);
            self.stats.record_hit(was_speculative);
            AccessOutcome::Hit
        } else {
            self.stats.record_miss();
            if self.resident.len() == self.capacity {
                self.evict_front();
            }
            self.queue.push_back(file);
            self.resident.insert(file, false);
            AccessOutcome::Miss
        }
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.resident.contains_key(&file) {
            return false;
        }
        if self.resident.len() == self.capacity {
            self.evict_front();
        }
        self.queue.push_front(file);
        self.resident.insert(file, true);
        self.stats.record_speculative_insert();
        true
    }

    fn contains(&self, file: FileId) -> bool {
        self.resident.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "fifo"
    }

    fn clear(&mut self) {
        self.queue.clear();
        self.resident.clear();
        self.stats = CacheStats::new();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("FifoCache", detail));
        if self.resident.len() > self.capacity {
            return err(format!(
                "len {} exceeds capacity {}",
                self.resident.len(),
                self.capacity
            ));
        }
        if self.queue.len() != self.resident.len() {
            return err(format!(
                "queue has {} entries, resident map has {}",
                self.queue.len(),
                self.resident.len()
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for &file in &self.queue {
            if !seen.insert(file) {
                return err(format!("file {file} queued twice"));
            }
            if !self.resident.contains_key(&file) {
                return err(format!("queued file {file} missing from resident map"));
            }
        }
        self.stats.check("FifoCache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;

    #[test]
    fn conformance() {
        check_cache_conformance(FifoCache::new);
    }

    #[test]
    fn corrupted_queue_is_detected() {
        let mut c = FifoCache::new(3);
        c.access(FileId(1));
        assert!(c.check_invariants().is_ok());
        // A queued id with no residency record desynchronises the pair.
        c.queue.push_back(FileId(999));
        assert!(c.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = FifoCache::new(0);
    }

    #[test]
    fn hit_does_not_refresh() {
        let mut c = FifoCache::new(2);
        c.access(FileId(1));
        c.access(FileId(2));
        assert!(c.access(FileId(1)).is_hit());
        c.access(FileId(3)); // still evicts 1
        assert!(!c.contains(FileId(1)));
        assert!(c.contains(FileId(2)));
    }

    #[test]
    fn speculative_evicted_first() {
        let mut c = FifoCache::new(2);
        c.access(FileId(1));
        c.insert_speculative(FileId(9));
        c.access(FileId(2)); // evicts 9 (front of queue)
        assert!(!c.contains(FileId(9)));
        assert!(c.contains(FileId(1)));
    }

    #[test]
    fn eviction_strictly_in_insertion_order() {
        let mut c = FifoCache::new(3);
        for i in 1..=3 {
            c.access(FileId(i));
        }
        for i in 4..=6 {
            c.access(FileId(i));
            assert!(!c.contains(FileId(i - 3)), "expected {} evicted", i - 3);
        }
    }
}

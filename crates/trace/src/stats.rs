//! Descriptive statistics over traces.
//!
//! These are the sanity checks used throughout the paper's §4.1 workload
//! characterisation: event volume, unique-file counts, access-kind mix,
//! repeat behaviour and popularity skew.

use std::collections::{HashMap, HashSet};

use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId};

use crate::Trace;

/// Summary statistics of a [`Trace`].
///
/// ```
/// use fgcache_trace::{stats::TraceStats, Trace};
///
/// let t = Trace::from_files([1, 2, 1, 1]);
/// let s = TraceStats::compute(&t);
/// assert_eq!(s.events, 4);
/// assert_eq!(s.unique_files, 2);
/// assert_eq!(s.repeat_accesses, 2); // third and fourth touch known files
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total number of events.
    pub events: usize,
    /// Number of distinct files accessed.
    pub unique_files: usize,
    /// Number of distinct clients.
    pub clients: usize,
    /// Count of read events.
    pub reads: usize,
    /// Count of write events.
    pub writes: usize,
    /// Count of create events.
    pub creates: usize,
    /// Count of delete events.
    pub deletes: usize,
    /// Events whose file had already been accessed earlier in the trace.
    pub repeat_accesses: usize,
    /// Accesses of the single most popular file.
    pub max_file_accesses: usize,
    /// Fraction of all accesses going to the top 1 % most popular files
    /// (at least one file); 0 for an empty trace.
    pub top_percent_share: f64,
    /// Number of files accessed exactly once.
    pub singleton_files: usize,
}

impl TraceStats {
    /// Computes statistics for `trace` in a single pass (a
    /// [`TraceStatsBuilder`] fed from the in-memory events).
    pub fn compute(trace: &Trace) -> Self {
        let mut builder = TraceStatsBuilder::new();
        for ev in trace.events() {
            builder.push(ev);
        }
        builder.finish()
    }

    /// Fraction of events that re-access an already-seen file; 0 for an
    /// empty trace. High repeat fractions are a precondition for *any*
    /// caching to help.
    pub fn repeat_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.repeat_accesses as f64 / self.events as f64
        }
    }

    /// Fraction of events that are mutations (write/create/delete).
    pub fn mutation_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            (self.writes + self.creates + self.deletes) as f64 / self.events as f64
        }
    }

    /// Renders a short human-readable report.
    pub fn report(&self) -> String {
        format!(
            "events {} | unique files {} | clients {} | R/W/C/D {}/{}/{}/{} | \
             repeat {:.1}% | singletons {} | top-1% share {:.1}%",
            self.events,
            self.unique_files,
            self.clients,
            self.reads,
            self.writes,
            self.creates,
            self.deletes,
            self.repeat_fraction() * 100.0,
            self.singleton_files,
            self.top_percent_share * 100.0,
        )
    }
}

/// Incremental computation of [`TraceStats`] from an event stream.
///
/// The streaming twin of [`TraceStats::compute`] for traces too large to
/// hold in memory: feed events one at a time with
/// [`push`](TraceStatsBuilder::push), then call
/// [`finish`](TraceStatsBuilder::finish). Memory is bounded by the number
/// of *distinct* files and clients, never by the trace length, and the
/// resulting statistics are identical to the materialized computation.
///
/// ```
/// use fgcache_trace::stats::{TraceStats, TraceStatsBuilder};
/// use fgcache_trace::Trace;
///
/// let t = Trace::from_files([1, 2, 1, 1]);
/// let mut b = TraceStatsBuilder::new();
/// for ev in t.events() {
///     b.push(ev);
/// }
/// assert_eq!(b.finish(), TraceStats::compute(&t));
/// ```
#[derive(Debug, Default)]
pub struct TraceStatsBuilder {
    counts: HashMap<FileId, usize>,
    clients: HashSet<ClientId>,
    events: usize,
    reads: usize,
    writes: usize,
    creates: usize,
    deletes: usize,
    repeat_accesses: usize,
}

impl TraceStatsBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TraceStatsBuilder::default()
    }

    /// Number of events pushed so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Accumulates one event.
    pub fn push(&mut self, ev: &AccessEvent) {
        self.events += 1;
        match ev.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
            AccessKind::Create => self.creates += 1,
            AccessKind::Delete => self.deletes += 1,
        }
        self.clients.insert(ev.client);
        let c = self.counts.entry(ev.file).or_insert(0);
        if *c > 0 {
            self.repeat_accesses += 1;
        }
        *c += 1;
    }

    /// Finalises the popularity-ranking statistics and returns the
    /// summary.
    pub fn finish(self) -> TraceStats {
        let unique_files = self.counts.len();
        let singleton_files = self.counts.values().filter(|&&c| c == 1).count();
        let max_file_accesses = self.counts.values().copied().max().unwrap_or(0);
        let top_percent_share = if self.events == 0 || unique_files == 0 {
            0.0
        } else {
            let mut sorted: Vec<usize> = self.counts.values().copied().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let top_k = (unique_files.div_ceil(100)).max(1);
            let top: usize = sorted.iter().take(top_k).sum();
            top as f64 / self.events as f64
        };
        TraceStats {
            events: self.events,
            unique_files,
            clients: self.clients.len(),
            reads: self.reads,
            writes: self.writes,
            creates: self.creates,
            deletes: self.deletes,
            repeat_accesses: self.repeat_accesses,
            max_file_accesses,
            top_percent_share,
            singleton_files,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_event_builder_reports_zero_rates_not_nan() {
        let stats = TraceStatsBuilder::default().finish();
        assert_eq!(stats.events, 0);
        assert!(stats.repeat_fraction().is_finite());
        assert_eq!(stats.repeat_fraction(), 0.0);
        assert!(stats.mutation_fraction().is_finite());
        assert_eq!(stats.mutation_fraction(), 0.0);
    }
    use crate::synth::{SynthConfig, WorkloadProfile};
    use fgcache_types::SeqNo;

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s.events, 0);
        assert_eq!(s.unique_files, 0);
        assert_eq!(s.repeat_fraction(), 0.0);
        assert_eq!(s.mutation_fraction(), 0.0);
        assert_eq!(s.top_percent_share, 0.0);
    }

    #[test]
    fn counts_kinds() {
        let t: Trace = vec![
            AccessEvent::new(SeqNo(0), ClientId(0), FileId(1), AccessKind::Read),
            AccessEvent::new(SeqNo(1), ClientId(0), FileId(2), AccessKind::Write),
            AccessEvent::new(SeqNo(2), ClientId(1), FileId(3), AccessKind::Create),
            AccessEvent::new(SeqNo(3), ClientId(1), FileId(3), AccessKind::Delete),
        ]
        .into_iter()
        .collect();
        let s = TraceStats::compute(&t);
        assert_eq!((s.reads, s.writes, s.creates, s.deletes), (1, 1, 1, 1));
        assert_eq!(s.clients, 2);
        assert_eq!(s.repeat_accesses, 1);
        assert_eq!(s.mutation_fraction(), 0.75);
    }

    #[test]
    fn repeat_and_singletons() {
        let t = Trace::from_files([5, 5, 5, 6]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.unique_files, 2);
        assert_eq!(s.singleton_files, 1);
        assert_eq!(s.max_file_accesses, 3);
        assert_eq!(s.repeat_accesses, 2);
        assert!((s.repeat_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_percent_share_bounds() {
        let t = Trace::from_files((0..1000).map(|i| i % 37));
        let s = TraceStats::compute(&t);
        assert!(s.top_percent_share > 0.0 && s.top_percent_share <= 1.0);
    }

    #[test]
    fn write_profile_has_more_mutations_than_server() {
        let make = |p| {
            TraceStats::compute(
                &SynthConfig::profile(p)
                    .events(8_000)
                    .seed(3)
                    .build()
                    .unwrap()
                    .generate(),
            )
        };
        let write = make(WorkloadProfile::Write);
        let server = make(WorkloadProfile::Server);
        assert!(write.mutation_fraction() > server.mutation_fraction() * 2.0);
        assert!(write.creates > server.creates);
    }

    #[test]
    fn synthetic_workloads_repeat_heavily() {
        for p in WorkloadProfile::ALL {
            let t = SynthConfig::profile(p)
                .events(10_000)
                .seed(1)
                .build()
                .unwrap()
                .generate();
            let s = TraceStats::compute(&t);
            assert!(
                s.repeat_fraction() > 0.5,
                "{p}: repeat fraction {}",
                s.repeat_fraction()
            );
        }
    }

    #[test]
    fn report_is_nonempty() {
        let s = TraceStats::compute(&Trace::from_files([1, 2]));
        assert!(s.report().contains("events 2"));
    }

    #[test]
    fn builder_matches_compute_on_synthetic_workloads() {
        for p in WorkloadProfile::ALL {
            let t = SynthConfig::profile(p)
                .events(5_000)
                .seed(9)
                .build()
                .unwrap()
                .generate();
            let mut b = TraceStatsBuilder::new();
            for ev in t.events() {
                b.push(ev);
            }
            assert_eq!(b.events(), 5_000);
            assert_eq!(b.finish(), TraceStats::compute(&t));
        }
    }

    #[test]
    fn empty_builder_matches_empty_compute() {
        assert_eq!(
            TraceStatsBuilder::new().finish(),
            TraceStats::compute(&Trace::default())
        );
    }
}

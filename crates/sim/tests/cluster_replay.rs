//! The tentpole acceptance test at fleet scale: a 100-virtual-node
//! cluster replaying a streamed trace with membership churn is
//! byte-identical, per node, to the single-process routing oracle.
//! (The multi-million-event run of the same harness happens in release
//! mode via `fgcache bench-cluster --virtual`, wired into CI.)

use fgcache_sim::cluster::{
    oracle_replay, zipf_stream, MembershipChange, MembershipEvent, VirtualCluster,
    VirtualClusterConfig,
};

#[test]
fn hundred_node_cluster_matches_the_oracle_under_churn() {
    let config = VirtualClusterConfig {
        nodes: 100,
        node_capacity: 80,
        shards: 2,
        group_size: 4,
        successor_capacity: 4,
    };
    let total = 60_000u64;
    // Nodes leave and rejoin mid-replay; every change moves keys.
    let schedule = vec![
        MembershipEvent {
            at_event: total / 4,
            change: MembershipChange::Leave(17),
        },
        MembershipEvent {
            at_event: total * 2 / 5,
            change: MembershipChange::Leave(63),
        },
        MembershipEvent {
            at_event: total * 7 / 10,
            change: MembershipChange::Join(17),
        },
    ];
    let events = || zipf_stream(4_000, 0.85, 2002, total).expect("valid zipf");

    let mut cluster = VirtualCluster::build(&config).expect("valid config");
    let report = cluster.replay(events(), &schedule);
    let oracle = oracle_replay(&config, events(), &schedule).expect("valid config");

    // The headline assertion: 100 nodes, byte-identical stats per node.
    for (i, (got, want)) in report.per_node.iter().zip(&oracle).enumerate() {
        assert_eq!(got, want, "node {i} diverged from the oracle");
    }
    assert_eq!(report.per_node.len(), 100);
    assert_eq!(report.events, total);
    assert_eq!(report.load.iter().sum::<u64>(), total);

    // The load distribution reflects the Zipf *access* skew (hot files
    // concentrate on their owners), not a hash defect — so the bound is
    // loose. What matters: the metric is sane and no node is starved of
    // ownership entirely.
    let imbalance = report.imbalance.expect("live fleet with traffic");
    assert!((1.0..15.0).contains(&imbalance), "imbalance {imbalance}");
    assert!(
        report.load.iter().all(|&l| l > 0),
        "every node should serve something over 60k events"
    );

    // With 100 nodes, ~99% of events enter at a non-owner: proxying
    // dominates, and none of it failed or fell back.
    let proxied: u64 = report.node_stats.iter().map(|s| s.proxied).sum();
    assert!(proxied > total / 2, "proxied only {proxied} of {total}");
    assert_eq!(report.upstream.requests, proxied);
    assert_eq!(
        report
            .node_stats
            .iter()
            .map(|s| s.proxy_failures)
            .sum::<u64>(),
        0
    );
    // Sequential replay: no two concurrent misses, so nothing collapsed
    // and nothing hit a reply cache.
    assert_eq!(
        report.node_stats.iter().map(|s| s.collapsed).sum::<u64>(),
        0
    );
    assert_eq!(report.upstream.reply_cache_hits, 0);
}

//! The [`Transport`] trait: the seam between cache logic and the fetch
//! path.
//!
//! A transport executes *group fetches*: each [`GroupRequest`] names one
//! or more files to be served in a single round trip, and the matching
//! [`GroupReply`] reports per-file hit/miss provenance. Implementations
//! range from a zero-cost in-process call ([`DirectTransport`]) through a
//! virtual-clock simulation ([`SimTransport`](crate::SimTransport)) to a
//! real TCP client ([`NetClient`](crate::NetClient)); simulators and
//! benchmarks are written against the trait so the fetch path can be
//! swapped without touching replay logic.
//!
//! # Request identity and idempotency
//!
//! Every request carries a caller-assigned `request_id`. Servers keep a
//! bounded reply cache keyed by that id, so a *retry* of a request whose
//! reply was lost re-delivers the original reply instead of re-executing
//! the fetch (which would corrupt cache statistics and residency). Ids
//! must therefore be unique per server within the dedup window; drivers
//! with several clients namespace them via [`request_id`].

use fgcache_core::ShardedAggregatingCache;
use fgcache_types::{AccessOutcome, FileId, TransportError};

/// Builds a namespaced request id: client `namespace` in the top 16 bits,
/// per-client sequence number below. Keeps concurrent clients' ids
/// disjoint so server-side reply deduplication never collides.
pub fn request_id(namespace: u64, seq: u64) -> u64 {
    (namespace << 48) | (seq & ((1u64 << 48) - 1))
}

/// One group fetch: a caller-assigned id plus the files to serve in a
/// single round trip (the demand-requested file first, by convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRequest {
    /// Caller-assigned id; retries reuse it so servers can deduplicate.
    pub request_id: u64,
    /// Files to serve, in order.
    pub files: Vec<FileId>,
}

impl GroupRequest {
    /// Creates a group request.
    pub fn new(request_id: u64, files: Vec<FileId>) -> Self {
        GroupRequest { request_id, files }
    }
}

/// Per-file provenance in a [`GroupReply`]: was the file resident at the
/// server ([`AccessOutcome::Hit`]) or fetched on demand
/// ([`AccessOutcome::Miss`])?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileReply {
    /// The file served.
    pub file: FileId,
    /// Whether the server had it resident.
    pub outcome: AccessOutcome,
}

/// The reply to one [`GroupRequest`]: per-file provenance, echoing the
/// request id so callers can match pipelined replies and detect stale
/// duplicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupReply {
    /// Echo of [`GroupRequest::request_id`].
    pub request_id: u64,
    /// One entry per requested file, in request order.
    pub files: Vec<FileReply>,
}

impl GroupReply {
    /// Number of files the server had resident.
    pub fn hits(&self) -> u64 {
        self.files.iter().filter(|f| f.outcome.is_hit()).count() as u64
    }

    /// Number of files the server fetched on demand.
    pub fn misses(&self) -> u64 {
        self.files.len() as u64 - self.hits()
    }
}

/// Counters a transport maintains about its own traffic.
///
/// `requests`/`files_moved` count fetches actually *executed* at the
/// backend — deduplicated retries increment `dedup_hits` and
/// `round_trips` instead, which is what keeps these counters equal to the
/// served cache's own statistics even under fault injection.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportStats {
    /// Group fetches executed at the backend.
    pub requests: u64,
    /// Wire round trips, including deduplicated re-serves and batched
    /// submissions (a pipelined batch is one round trip).
    pub round_trips: u64,
    /// File payloads delivered by executed fetches.
    pub files_moved: u64,
    /// Per-file hit provenance tally across executed fetches.
    pub hits: u64,
    /// Per-file miss provenance tally across executed fetches.
    pub misses: u64,
    /// Requests answered from the server-side reply cache (idempotent
    /// retries).
    pub dedup_hits: u64,
    /// Hits in a reply cache *owned by this transport stack* — the
    /// server-side view of `dedup_hits`, populated by transports that
    /// embed a reply cache (e.g. `SimTransport`) and by cluster nodes;
    /// real servers export theirs via
    /// [`WireStats::reply_cache_hits`](crate::WireStats::reply_cache_hits).
    pub reply_cache_hits: u64,
    /// Retry attempts made by a retrying decorator.
    pub retries: u64,
    /// Attempts that ended in a timeout or dropped reply.
    pub timeouts: u64,
    /// Stale (mismatched-id) replies discarded by the caller.
    pub duplicates_discarded: u64,
    /// Virtual time elapsed, in cost-model units (simulated transports
    /// only; 0 for real ones, which are measured by wall clock).
    pub virtual_time: f64,
}

impl TransportStats {
    /// Adds `other`'s counters into `self` (for summing per-client
    /// transports into a fleet total).
    pub fn merge(&mut self, other: &TransportStats) {
        self.requests += other.requests;
        self.round_trips += other.round_trips;
        self.files_moved += other.files_moved;
        self.hits += other.hits;
        self.misses += other.misses;
        self.dedup_hits += other.dedup_hits;
        self.reply_cache_hits += other.reply_cache_hits;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.duplicates_discarded += other.duplicates_discarded;
        self.virtual_time += other.virtual_time;
    }
}

/// A fetch path that executes group fetches.
///
/// Implementations must be *idempotent by request id*: fetching the same
/// `request_id` twice executes the fetch once and re-delivers the first
/// reply (see the module docs). `fetch_batch` submits several outstanding
/// group fetches as one pipelined round trip where the implementation
/// supports it; the default executes them sequentially.
pub trait Transport {
    /// Executes one group fetch.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] classifying the failure; retryable
    /// kinds may be re-attempted with the *same* request id.
    fn fetch_group(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError>;

    /// Submits `batch` as one pipelined round trip, returning one result
    /// per request in request order. The default implementation executes
    /// the batch sequentially (no pipelining win).
    fn fetch_batch(&mut self, batch: &[GroupRequest]) -> Vec<Result<GroupReply, TransportError>> {
        batch.iter().map(|r| self.fetch_group(r)).collect()
    }

    /// Executes one group fetch that the *receiving node must serve
    /// itself* — the depth-bounded cluster proxy call. A cluster node
    /// answering this never forwards it onward, which caps proxy chains
    /// at depth 1 even when membership views disagree. For transports
    /// with no notion of ownership the default is identical to
    /// [`Transport::fetch_group`].
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] classifying the failure; retryable
    /// kinds may be re-attempted with the *same* request id.
    fn fetch_owned(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        self.fetch_group(request)
    }

    /// This transport's traffic counters.
    fn stats(&self) -> TransportStats;
}

/// The zero-cost transport: group fetches become direct in-process calls
/// against a shared [`ShardedAggregatingCache`]. This is the baseline
/// every other transport is differentially tested against — by
/// construction it produces exactly the access sequence the cache would
/// see without any transport at all.
#[derive(Debug)]
pub struct DirectTransport<'a> {
    cache: &'a ShardedAggregatingCache,
    stats: TransportStats,
}

impl<'a> DirectTransport<'a> {
    /// Creates a direct transport serving from `cache`.
    pub fn new(cache: &'a ShardedAggregatingCache) -> Self {
        DirectTransport {
            cache,
            stats: TransportStats::default(),
        }
    }
}

impl Transport for DirectTransport<'_> {
    fn fetch_group(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        let files: Vec<FileReply> = request
            .files
            .iter()
            .map(|&file| FileReply {
                file,
                outcome: self.cache.handle_access(file),
            })
            .collect();
        self.stats.requests += 1;
        self.stats.round_trips += 1;
        self.stats.files_moved += files.len() as u64;
        let reply = GroupReply {
            request_id: request.request_id,
            files,
        };
        self.stats.hits += reply.hits();
        self.stats.misses += reply.misses();
        Ok(reply)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_core::ShardedAggregatingCacheBuilder;

    #[test]
    fn request_id_namespacing_is_disjoint() {
        assert_eq!(request_id(0, 5), 5);
        assert_ne!(request_id(1, 5), request_id(2, 5));
        assert_ne!(request_id(1, 5), request_id(1, 6));
        // Sequence numbers never bleed into the namespace bits.
        assert_eq!(request_id(3, 0) >> 48, 3);
        assert_eq!(request_id(3, (1 << 48) - 1) >> 48, 3);
    }

    #[test]
    fn reply_provenance_tallies() {
        let reply = GroupReply {
            request_id: 1,
            files: vec![
                FileReply {
                    file: FileId(1),
                    outcome: AccessOutcome::Hit,
                },
                FileReply {
                    file: FileId(2),
                    outcome: AccessOutcome::Miss,
                },
                FileReply {
                    file: FileId(3),
                    outcome: AccessOutcome::Miss,
                },
            ],
        };
        assert_eq!(reply.hits(), 1);
        assert_eq!(reply.misses(), 2);
    }

    #[test]
    fn direct_transport_mirrors_cache_counters() {
        let cache = ShardedAggregatingCacheBuilder::new(40)
            .shards(2)
            .group_size(3)
            .build()
            .unwrap();
        let mut t = DirectTransport::new(&cache);
        for (i, id) in [1u64, 2, 3, 1, 2, 3].into_iter().enumerate() {
            t.fetch_group(&GroupRequest::new(i as u64, vec![FileId(id)]))
                .unwrap();
        }
        let ts = t.stats();
        assert_eq!(ts.requests, 6);
        assert_eq!(ts.files_moved, 6);
        assert_eq!(ts.hits + ts.misses, 6);
        let cs = cache.stats();
        assert_eq!(ts.hits, cs.hits);
        assert_eq!(ts.misses, cs.misses);
        assert_eq!(cs.accesses, 6);
    }

    #[test]
    fn default_batch_is_sequential() {
        let cache = ShardedAggregatingCacheBuilder::new(40)
            .shards(1)
            .group_size(3)
            .build()
            .unwrap();
        let mut t = DirectTransport::new(&cache);
        let batch: Vec<GroupRequest> = (0..4u64)
            .map(|i| GroupRequest::new(i, vec![FileId(i % 2)]))
            .collect();
        let replies = t.fetch_batch(&batch);
        assert_eq!(replies.len(), 4);
        for (r, req) in replies.iter().zip(&batch) {
            assert_eq!(r.as_ref().unwrap().request_id, req.request_id);
        }
        assert_eq!(t.stats().requests, 4);
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = TransportStats {
            requests: 1,
            round_trips: 2,
            files_moved: 3,
            hits: 1,
            misses: 2,
            dedup_hits: 1,
            reply_cache_hits: 1,
            retries: 1,
            timeouts: 1,
            duplicates_discarded: 1,
            virtual_time: 1.5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.requests, 2);
        assert_eq!(a.round_trips, 4);
        assert_eq!(a.files_moved, 6);
        assert_eq!(a.reply_cache_hits, 2);
        assert_eq!(a.virtual_time, 3.0);
    }
}

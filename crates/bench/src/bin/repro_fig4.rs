//! Reproduces **Figure 4**: server cache hit rate as a function of the
//! intervening client (filter) cache capacity (50–500 files), server
//! cache fixed at 300 files, comparing the aggregating cache (g5)
//! against plain LRU and LFU, on the workstation, users and server
//! workloads.
//!
//! Expected shape (paper): LRU/LFU hit rates collapse as the filter
//! approaches the server capacity; the aggregating cache degrades mildly
//! and keeps delivering 30–60 % hit rates where LRU is near zero;
//! LRU ≥ LFU.

use fgcache_bench::{emit, standard_trace};
use fgcache_sim::server::{hit_rate_table, two_level_sweep, TwoLevelConfig};
use fgcache_trace::synth::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for profile in [
        WorkloadProfile::Workstation,
        WorkloadProfile::Users,
        WorkloadProfile::Server,
    ] {
        let trace = standard_trace(profile);
        let points = two_level_sweep(&trace, &TwoLevelConfig::paper())?;
        let table = hit_rate_table(
            &format!(
                "Figure 4 ({profile}): server hit rate vs filter capacity (server cache = 300)"
            ),
            &points,
        );
        emit(&format!("fig4_{profile}"), &table)?;
    }
    Ok(())
}

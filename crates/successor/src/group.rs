//! Best-effort construction of file groups for retrieval.
//!
//! The server "will currently make a best-effort to retrieve a group of
//! `g` files" (§3): the requested file plus up to `g − 1` predicted
//! successors, found by chaining most-likely immediate successors
//! (transitive successors). Groups may *overlap* across requests — the
//! paper explicitly rejects disjoint partitioning (§2.1).

use std::fmt;

use fgcache_types::{FileId, ValidationError};

use crate::list::SuccessorList;
use crate::table::SuccessorTable;

/// A retrieval group: the requested file first, followed by predicted
/// members in decreasing confidence, with no duplicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Group {
    files: Vec<FileId>,
}

impl Group {
    /// Creates a group from the requested file and its predicted members,
    /// de-duplicating while preserving order.
    pub fn new(requested: FileId, members: impl IntoIterator<Item = FileId>) -> Self {
        let mut files = vec![requested];
        for f in members {
            if !files.contains(&f) {
                files.push(f);
            }
        }
        Group { files }
    }

    /// All files in the group, requested file first.
    pub fn files(&self) -> &[FileId] {
        &self.files
    }

    /// The demand-requested file.
    pub fn requested(&self) -> FileId {
        self.files[0]
    }

    /// The speculative members (everything but the requested file).
    pub fn members(&self) -> &[FileId] {
        &self.files[1..]
    }

    /// Total group size including the requested file.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Always `false`: a group contains at least the requested file.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `file` is in the group.
    pub fn contains(&self, file: FileId) -> bool {
        self.files.contains(&file)
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.files[0])?;
        for file in &self.files[1..] {
            write!(f, " {file}")?;
        }
        write!(f, "]")
    }
}

impl<'a> IntoIterator for &'a Group {
    type Item = FileId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, FileId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.files.iter().copied()
    }
}

/// Builds best-effort groups of a configured size from a successor table.
///
/// ```
/// use fgcache_successor::{GroupBuilder, LruSuccessorList, SuccessorTable};
/// use fgcache_types::FileId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = SuccessorTable::new(LruSuccessorList::new(2)?);
/// for id in [10u64, 11, 12, 10, 11, 12] {
///     table.record(FileId(id));
/// }
/// let group = GroupBuilder::new(3)?.build(&table, FileId(10));
/// assert_eq!(group.len(), 3);
/// assert_eq!(group.requested(), FileId(10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupBuilder {
    group_size: usize,
}

impl GroupBuilder {
    /// Creates a builder for groups of `group_size` files (including the
    /// requested file). Size 1 degenerates to single-file fetching (plain
    /// demand caching).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `group_size` is zero.
    pub fn new(group_size: usize) -> Result<Self, ValidationError> {
        if group_size == 0 {
            return Err(ValidationError::new(
                "group_size",
                "groups contain at least the requested file",
            ));
        }
        Ok(GroupBuilder { group_size })
    }

    /// The configured group size `g`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Builds the group for a request of `start`: `start` plus up to
    /// `g − 1` transitive successors. Best-effort — the group is smaller
    /// when the successor chain runs out.
    pub fn build<L: SuccessorList>(&self, table: &SuccessorTable<L>, start: FileId) -> Group {
        let members = table.predict_chain(start, self.group_size - 1);
        Group::new(start, members)
    }

    /// Allocation-free [`build`](Self::build): fills `members` with the
    /// group's speculative members (the requested file is *not*
    /// included — it is implicitly first), using `scratch` as a reusable
    /// ranking buffer. The chain walk already yields distinct files
    /// excluding `start`, so `members` needs no further deduplication.
    /// Both buffers are cleared first; at steady-state capacity the call
    /// performs zero heap allocation.
    pub fn build_into<L: SuccessorList>(
        &self,
        table: &SuccessorTable<L>,
        start: FileId,
        members: &mut Vec<FileId>,
        scratch: &mut Vec<FileId>,
    ) {
        table.predict_chain_into(start, self.group_size - 1, members, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::LruSuccessorList;

    fn table_from(seq: &[u64], cap: usize) -> SuccessorTable<LruSuccessorList> {
        let mut t = SuccessorTable::new(LruSuccessorList::new(cap).unwrap());
        for &id in seq {
            t.record(FileId(id));
        }
        t
    }

    #[test]
    fn builder_validates_size() {
        assert!(GroupBuilder::new(0).is_err());
        assert_eq!(GroupBuilder::new(5).unwrap().group_size(), 5);
    }

    #[test]
    fn group_of_one_is_just_the_request() {
        let t = table_from(&[1, 2, 3, 1, 2, 3], 2);
        let g = GroupBuilder::new(1).unwrap().build(&t, FileId(1));
        assert_eq!(g.files(), &[FileId(1)]);
        assert!(g.members().is_empty());
        assert!(!g.is_empty());
    }

    #[test]
    fn group_follows_chain() {
        let t = table_from(&[1, 2, 3, 4, 5, 1, 2, 3, 4, 5], 2);
        let g = GroupBuilder::new(4).unwrap().build(&t, FileId(1));
        assert_eq!(g.files(), &[FileId(1), FileId(2), FileId(3), FileId(4)]);
    }

    #[test]
    fn group_is_best_effort_when_chain_short() {
        let t = table_from(&[1, 2], 2);
        let g = GroupBuilder::new(5).unwrap().build(&t, FileId(1));
        assert_eq!(g.files(), &[FileId(1), FileId(2)]);
    }

    #[test]
    fn unknown_file_gives_singleton_group() {
        let t = table_from(&[1, 2], 2);
        let g = GroupBuilder::new(5).unwrap().build(&t, FileId(42));
        assert_eq!(g.files(), &[FileId(42)]);
    }

    #[test]
    fn group_never_contains_duplicates() {
        let t = table_from(&[1, 2, 1, 2, 1, 2], 2);
        let g = GroupBuilder::new(5).unwrap().build(&t, FileId(1));
        let mut sorted: Vec<FileId> = g.files().to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.len());
    }

    #[test]
    fn build_into_matches_build() {
        let t = table_from(&[1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 2, 1], 3);
        let mut members = vec![FileId(9)];
        let mut scratch = vec![FileId(9)];
        for g in 1..6 {
            let builder = GroupBuilder::new(g).unwrap();
            for start in [1u64, 2, 5, 42] {
                builder.build_into(&t, FileId(start), &mut members, &mut scratch);
                assert_eq!(
                    members.as_slice(),
                    builder.build(&t, FileId(start)).members(),
                    "build_into diverges at g={g} start={start}"
                );
            }
        }
    }

    #[test]
    fn group_new_dedups_members() {
        let g = Group::new(FileId(1), [FileId(2), FileId(2), FileId(1), FileId(3)]);
        assert_eq!(g.files(), &[FileId(1), FileId(2), FileId(3)]);
        assert!(g.contains(FileId(3)));
        assert!(!g.contains(FileId(9)));
    }

    #[test]
    fn group_display_and_iter() {
        let g = Group::new(FileId(1), [FileId(2)]);
        assert_eq!(g.to_string(), "[f1 f2]");
        let collected: Vec<FileId> = (&g).into_iter().collect();
        assert_eq!(collected, vec![FileId(1), FileId(2)]);
    }
}

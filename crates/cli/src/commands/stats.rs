//! `fgcache stats` — summarise a trace.

use std::error::Error;

use fgcache_trace::stats::TraceStats;
use fgcache_trace::Trace;

use crate::args::Args;
use crate::commands::load_trace;

pub(crate) fn report(trace: &Trace) -> String {
    let s = TraceStats::compute(trace);
    let mut out = String::new();
    out.push_str(&format!("events            {}\n", s.events));
    out.push_str(&format!("unique files      {}\n", s.unique_files));
    out.push_str(&format!("clients           {}\n", s.clients));
    out.push_str(&format!(
        "kinds             R {} / W {} / C {} / D {}\n",
        s.reads, s.writes, s.creates, s.deletes
    ));
    out.push_str(&format!(
        "repeat fraction   {:.1}%\n",
        s.repeat_fraction() * 100.0
    ));
    out.push_str(&format!(
        "mutation fraction {:.1}%\n",
        s.mutation_fraction() * 100.0
    ));
    out.push_str(&format!("singleton files   {}\n", s.singleton_files));
    out.push_str(&format!("hottest file hits {}\n", s.max_file_accesses));
    out.push_str(&format!(
        "top-1% share      {:.1}%\n",
        s.top_percent_share * 100.0
    ));
    out
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["format"])?;
    let path = args.require_positional(0, "trace")?;
    let trace = load_trace(path, args.flag("format"))?;
    print!("{}", report(&trace));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_key_lines() {
        let trace = Trace::from_files([1, 2, 1, 3]);
        let text = report(&trace);
        assert!(text.contains("events            4"));
        assert!(text.contains("unique files      3"));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&["/nonexistent/trace.txt".to_string()]).unwrap_err();
        assert!(err.to_string().contains("cannot open"));
    }

    #[test]
    fn missing_positional_is_reported() {
        let err = run(&[]).unwrap_err();
        assert!(err.to_string().contains("<trace>"));
    }
}

//! Streaming-ingestion benchmark: events/sec and peak memory for the
//! streaming trace readers versus the materialized (`Vec`-collecting)
//! path, across all three on-disk formats.
//!
//! Each scenario writes a synthetic trace to a temp file, then consumes
//! it twice with a byte-tracking global allocator (this bench binary
//! only — the library crates stay `forbid(unsafe_code)`):
//!
//!   * `materialized` — `collect_trace` into a `Trace`, then
//!     `TraceStats::compute` (the pre-streaming shape: memory grows with
//!     the trace);
//!   * `streaming` — `TraceReader` feeding `TraceStatsBuilder` event by
//!     event (memory bounded by the distinct-file table).
//!
//! The two paths must produce identical statistics — the bench asserts
//! it on every run, so the perf numbers double as a differential check.
//!
//! Flags (after `--`): `--smoke` shrinks the event count for CI,
//! `--events N` overrides it (the 10M acceptance run), `--out PATH`
//! appends the report to a file as well as stdout.

use fgcache_trace::io;
use fgcache_trace::stats::{TraceStats, TraceStatsBuilder};
use fgcache_trace::stream::{collect_trace, TraceReader};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fs::File;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Tracks live and peak heap bytes routed through the global allocator.
struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        on_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

const FULL_EVENTS: usize = 2_000_000;
const SMOKE_EVENTS: usize = 100_000;

struct Scenario {
    format: &'static str,
    mode: &'static str,
    events_per_sec: f64,
    peak_mib: f64,
}

/// Runs `pass` with the peak counter rebased to the current live bytes;
/// returns (seconds, peak-above-baseline bytes, result).
fn measured<R>(pass: impl FnOnce() -> R) -> (f64, u64, R) {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let start = Instant::now();
    let result = black_box(pass());
    let secs = start.elapsed().as_secs_f64();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    (secs, peak, result)
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fgcache-streaming-ingest-{}-{name}",
        std::process::id()
    ));
    p
}

fn open_reader(format: &str, path: &PathBuf) -> TraceReader<File> {
    let file = File::open(path).expect("reopen trace file");
    match format {
        "text" => TraceReader::text(file),
        "json" => TraceReader::json(file),
        "binary" => {
            let len = file.metadata().expect("metadata").len();
            TraceReader::binary_with_len(file, len)
        }
        other => unreachable!("unknown format {other}"),
    }
}

fn bench_format(format: &'static str, trace: &Trace, out: &mut Vec<Scenario>) {
    let path = temp_path(format);
    let file = File::create(&path).expect("create trace file");
    let mut writer = std::io::BufWriter::new(file);
    match format {
        "text" => io::write_text(trace, &mut writer).expect("write text"),
        "json" => io::write_json(trace, &mut writer).expect("write json"),
        "binary" => io::write_binary(trace, &mut writer).expect("write binary"),
        other => unreachable!("unknown format {other}"),
    }
    drop(writer);
    let events = trace.len() as f64;

    let (secs, peak, materialized) = measured(|| {
        let full = collect_trace(open_reader(format, &path)).expect("materialized read");
        TraceStats::compute(&full)
    });
    out.push(Scenario {
        format,
        mode: "materialized",
        events_per_sec: events / secs,
        peak_mib: peak as f64 / (1024.0 * 1024.0),
    });

    let (secs, peak, streamed) = measured(|| {
        let mut builder = TraceStatsBuilder::new();
        for ev in open_reader(format, &path) {
            builder.push(&ev.expect("streaming read"));
        }
        builder.finish()
    });
    out.push(Scenario {
        format,
        mode: "streaming",
        events_per_sec: events / secs,
        peak_mib: peak as f64 / (1024.0 * 1024.0),
    });

    // Differential: the perf numbers only count if both paths computed
    // the same thing.
    assert_eq!(
        streamed, materialized,
        "{format}: streaming and materialized statistics diverged"
    );

    std::fs::remove_file(&path).ok();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut events = if args.iter().any(|a| a == "--smoke") {
        SMOKE_EVENTS
    } else {
        FULL_EVENTS
    };
    let mut out_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--events" => {
                events = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--events N");
            }
            "--out" => {
                out_path = Some(iter.next().expect("--out PATH").clone());
            }
            _ => {}
        }
    }

    let trace = SynthConfig::profile(WorkloadProfile::Workstation)
        .events(events)
        .seed(20020702)
        .build()
        .expect("valid synth config")
        .generate();

    let mut scenarios = Vec::new();
    for format in ["text", "json", "binary"] {
        bench_format(format, &trace, &mut scenarios);
    }

    let mut report = String::new();
    report.push_str(&format!(
        "streaming_ingest: {events} events, workstation profile, seed 20020702\n"
    ));
    report.push_str(&format!(
        "{:<8} {:<13} {:>14} {:>10}\n",
        "format", "mode", "events/sec", "peak MiB"
    ));
    for s in &scenarios {
        report.push_str(&format!(
            "{:<8} {:<13} {:>14.0} {:>10.2}\n",
            s.format, s.mode, s.events_per_sec, s.peak_mib
        ));
    }
    report.push_str("differential: streaming stats == materialized stats for every format\n");
    print!("{report}");
    if let Some(path) = out_path {
        std::fs::write(&path, &report).expect("write report");
        println!("wrote {path}");
    }
}

//! Quickstart: the aggregating cache versus plain LRU in 60 lines.
//!
//! Generates a deterministic, server-like synthetic workload, runs the
//! same access stream through a plain LRU client cache and through
//! aggregating caches of several group sizes, and prints demand-fetch
//! counts — the paper's Figure 3 metric, at a single capacity.
//!
//! Run with: `cargo run --release --example quickstart`

use fgcache::core::AggregatingCacheBuilder;
use fgcache::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic synthetic workload shaped like the paper's
    //    `server` trace: highly repetitive, application-driven.
    let trace = SynthConfig::profile(WorkloadProfile::Server)
        .events(50_000)
        .seed(1)
        .build()?
        .generate();
    println!(
        "workload: {} events, {} distinct files\n",
        trace.len(),
        fgcache::trace::stats::TraceStats::compute(&trace).unique_files
    );

    // 2. Drive the same stream through caches of identical capacity but
    //    different group sizes. Group size 1 IS plain LRU.
    let capacity = 300;
    println!("client cache capacity: {capacity} files");
    println!(
        "{:>6}  {:>14}  {:>9}  {:>10}",
        "group", "demand fetches", "hit rate", "reduction"
    );
    let mut lru_fetches = None;
    for g in [1usize, 2, 3, 5, 7, 10] {
        let mut cache = AggregatingCacheBuilder::new(capacity)
            .group_size(g)
            .build()?;
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        let fetches = cache.demand_fetches();
        let baseline = *lru_fetches.get_or_insert(fetches);
        println!(
            "{:>6}  {:>14}  {:>8.1}%  {:>9.1}%",
            if g == 1 {
                "lru".to_string()
            } else {
                format!("g{g}")
            },
            fetches,
            cache.hit_rate() * 100.0,
            (1.0 - fetches as f64 / baseline as f64) * 100.0,
        );
    }

    // 3. Peek at the metadata that made this possible: per-file successor
    //    lists, a few entries each.
    let mut cache = AggregatingCacheBuilder::new(capacity)
        .group_size(5)
        .build()?;
    for ev in trace.events() {
        cache.handle_access(ev.file);
    }
    let table = cache.successor_table();
    println!(
        "\nmetadata footprint: {} files tracked, {} successor entries total \
         ({:.2} per file)",
        table.tracked_files(),
        cache.metadata_entries(),
        cache.metadata_entries() as f64 / table.tracked_files().max(1) as f64,
    );
    println!(
        "prefetch accuracy: {:.1}% of speculative fetches were used",
        Cache::stats(&cache).speculative_accuracy() * 100.0
    );
    Ok(())
}

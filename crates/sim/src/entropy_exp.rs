//! Figures 7 and 8: successor entropy versus successor-sequence length,
//! for raw workloads and for workloads filtered through intervening LRU
//! caches.

use fgcache_entropy::{entropy_profile, filtered_entropy_profile};
use fgcache_trace::Trace;
use fgcache_types::ValidationError;

use crate::parallel::parallel_map;
use crate::report::{fmt2, Table};

/// One labelled entropy series: `(symbol length, entropy in bits)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropySeries {
    /// Series label (workload name, or `filter=N`).
    pub label: String,
    /// `(k, H_S)` pairs in ascending `k`.
    pub points: Vec<(usize, f64)>,
}

/// Figure 7: successor entropy of each labelled trace at every symbol
/// length in `ks`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if any `k` is zero.
pub fn entropy_sweep(
    traces: &[(String, &Trace)],
    ks: &[usize],
) -> Result<Vec<EntropySeries>, ValidationError> {
    for &k in ks {
        if k == 0 {
            return Err(ValidationError::new("ks", "symbol lengths must be >= 1"));
        }
    }
    let results = parallel_map(traces, |(label, trace)| {
        let files = trace.file_sequence();
        let points = entropy_profile(&files, ks).expect("ks validated above");
        EntropySeries {
            label: label.clone(),
            points,
        }
    });
    Ok(results)
}

/// Figure 8: successor entropy of `trace`'s miss stream for each
/// intervening LRU filter capacity, at every symbol length in `ks`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if any `k` is zero or any filter
/// capacity is zero.
pub fn filtered_entropy_sweep(
    trace: &Trace,
    filter_capacities: &[usize],
    ks: &[usize],
) -> Result<Vec<EntropySeries>, ValidationError> {
    for &k in ks {
        if k == 0 {
            return Err(ValidationError::new("ks", "symbol lengths must be >= 1"));
        }
    }
    for &cap in filter_capacities {
        if cap == 0 {
            return Err(ValidationError::new(
                "filter_capacities",
                "must all be greater than zero",
            ));
        }
    }
    let results = parallel_map(filter_capacities, |&cap| {
        let points = filtered_entropy_profile(trace, cap, ks).expect("validated above");
        EntropySeries {
            label: format!("filter={cap}"),
            points,
        }
    });
    Ok(results)
}

/// Renders entropy series as a table: one row per symbol length, one
/// column per series.
pub fn entropy_table(title: &str, series: &[EntropySeries]) -> Table {
    let mut columns = vec!["k".to_string()];
    columns.extend(series.iter().map(|s| s.label.clone()));
    let mut table = Table::new(title, columns);
    let ks: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|&(k, _)| k).collect())
        .unwrap_or_default();
    for &k in &ks {
        let mut row = vec![k.to_string()];
        for s in series {
            let cell = s
                .points
                .iter()
                .find(|&&(pk, _)| pk == k)
                .map(|&(_, h)| fmt2(h))
                .unwrap_or_default();
            row.push(cell);
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_trace::synth::{SynthConfig, WorkloadProfile};

    fn trace(profile: WorkloadProfile) -> Trace {
        SynthConfig::profile(profile)
            .events(6_000)
            .seed(3)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn validation() {
        let t = trace(WorkloadProfile::Server);
        assert!(entropy_sweep(&[("x".into(), &t)], &[0]).is_err());
        assert!(filtered_entropy_sweep(&t, &[10], &[0]).is_err());
        assert!(filtered_entropy_sweep(&t, &[0], &[1]).is_err());
    }

    #[test]
    fn server_is_most_predictable_workload() {
        let server = trace(WorkloadProfile::Server);
        let users = trace(WorkloadProfile::Users);
        let series = entropy_sweep(
            &[("server".into(), &server), ("users".into(), &users)],
            &[1],
        )
        .unwrap();
        let h = |label: &str| series.iter().find(|s| s.label == label).unwrap().points[0].1;
        assert!(
            h("server") < h("users"),
            "server {} vs users {}",
            h("server"),
            h("users")
        );
        // Paper: server successor entropy is "significantly less than one
        // bit" at k = 1.
        assert!(h("server") < 1.0, "server entropy {}", h("server"));
    }

    #[test]
    fn entropy_rises_with_symbol_length() {
        let t = trace(WorkloadProfile::Workstation);
        let series = entropy_sweep(&[("w".into(), &t)], &[1, 2, 4, 8]).unwrap();
        let pts = &series[0].points;
        for pair in pts.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-9,
                "entropy fell between k={} and k={}",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn filtered_sweep_produces_one_series_per_capacity() {
        let t = trace(WorkloadProfile::Users);
        let series = filtered_entropy_sweep(&t, &[1, 10, 100], &[1, 2]).unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].label, "filter=1");
        for s in &series {
            assert_eq!(s.points.len(), 2);
        }
    }

    #[test]
    fn table_layout() {
        let t = trace(WorkloadProfile::Server);
        let series = entropy_sweep(&[("server".into(), &t)], &[1, 2]).unwrap();
        let table = entropy_table("fig7", &series);
        assert_eq!(table.row_count(), 2);
        assert!(table.render().contains("server"));
    }
}

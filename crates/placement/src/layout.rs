//! Placement of files on a linear storage medium.
//!
//! A [`Layout`] assigns every file of a history trace a distinct slot on
//! a one-dimensional medium (a simplified disk surface). Strategies:
//!
//! * [`Layout::hashed`] — arbitrary (hash-order) placement: the "no
//!   optimisation" baseline.
//! * [`Layout::by_frequency`] — hottest files first, the classic
//!   frequency-ordered placement of Staelin & García-Molina.
//! * [`Layout::organ_pipe`] — hottest file in the centre, alternating
//!   outwards (Wong 1980), optimal for *independent* accesses.
//! * [`Layout::grouped`] — files laid out by the relationship graph's
//!   covering groups (hottest groups first, members adjacent): the
//!   paper's future-work proposal. Groups capture *dependence*, which
//!   the frequency placements ignore.

use std::collections::HashMap;

use fgcache_successor::RelationshipGraph;
use fgcache_trace::Trace;
use fgcache_types::FileId;

/// A placement of files onto distinct slots `0..n` of a linear medium.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    slots: HashMap<FileId, usize>,
}

impl Layout {
    /// Builds a layout from an explicit ordering (slot 0 first).
    ///
    /// Duplicate files keep their first position.
    pub fn from_order(order: impl IntoIterator<Item = FileId>) -> Self {
        let mut slots = HashMap::new();
        let mut next = 0usize;
        for f in order {
            slots.entry(f).or_insert_with(|| {
                let s = next;
                next += 1;
                s
            });
        }
        Layout { slots }
    }

    /// Arbitrary placement: files sorted by a cheap id-scrambling hash.
    /// Deterministic, but uncorrelated with access behaviour.
    pub fn hashed(history: &Trace) -> Self {
        let mut files: Vec<FileId> = distinct(history);
        files.sort_by_key(|f| f.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Layout::from_order(files)
    }

    /// Frequency placement: hottest files at the lowest slots.
    pub fn by_frequency(history: &Trace) -> Self {
        let counts = access_counts(history);
        let mut files: Vec<FileId> = counts.keys().copied().collect();
        files.sort_by_key(|f| (std::cmp::Reverse(counts[f]), *f));
        Layout::from_order(files)
    }

    /// Organ-pipe placement: hottest file in the centre of the medium,
    /// subsequent files alternating left and right.
    pub fn organ_pipe(history: &Trace) -> Self {
        let counts = access_counts(history);
        let mut files: Vec<FileId> = counts.keys().copied().collect();
        files.sort_by_key(|f| (std::cmp::Reverse(counts[f]), *f));
        let n = files.len();
        let mut order: Vec<Option<FileId>> = vec![None; n];
        let centre = n / 2;
        let mut offset = 0usize;
        let mut left = true;
        for f in files {
            let pos = loop {
                let candidate = if left {
                    centre.checked_sub(offset)
                } else {
                    let p = centre + offset;
                    (p < n).then_some(p)
                };
                // Alternate sides; grow the offset after a right placement.
                if left {
                    left = false;
                } else {
                    left = true;
                    offset += 1;
                }
                if let Some(p) = candidate {
                    if order[p].is_none() {
                        break p;
                    }
                }
            };
            order[pos] = Some(f);
        }
        Layout::from_order(order.into_iter().flatten())
    }

    /// Group-based placement via **transitive successor chains** (paper
    /// §3/§6): build the relationship graph from the history, then
    /// repeatedly start from the hottest unplaced file and greedily walk
    /// its strongest unplaced successor, laying each walk out
    /// contiguously. Files that are accessed together thus become storage
    /// neighbours, which frequency-only placements — built on an
    /// independence assumption — cannot achieve.
    ///
    /// `group_size` caps the chain-walk fan-out considered at each step
    /// (how many ranked successors are tried before the walk ends); the
    /// chains themselves run as long as the graph supports.
    pub fn grouped(history: &Trace, group_size: usize) -> Self {
        let mut graph = RelationshipGraph::new();
        graph.record_sequence(history.files());
        let counts = access_counts(history);
        let mut by_heat: Vec<FileId> = distinct(history);
        by_heat.sort_by_key(|f| (std::cmp::Reverse(counts[f]), *f));
        let mut placed: std::collections::HashSet<FileId> = std::collections::HashSet::new();
        let mut order: Vec<FileId> = Vec::new();
        for &seed in &by_heat {
            if placed.contains(&seed) {
                continue;
            }
            // Walk the chain from this seed.
            let mut current = seed;
            loop {
                placed.insert(current);
                order.push(current);
                let next = graph
                    .successors_ranked(current)
                    .into_iter()
                    .take(group_size.max(1))
                    .map(|(f, _)| f)
                    .find(|f| !placed.contains(f));
                match next {
                    Some(f) => current = f,
                    None => break,
                }
            }
        }
        Layout::from_order(order)
    }

    /// The slot of `file`, if placed.
    pub fn slot(&self, file: FileId) -> Option<usize> {
        self.slots.get(&file).copied()
    }

    /// Number of placed files.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no files are placed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

fn distinct(history: &Trace) -> Vec<FileId> {
    let mut files: Vec<FileId> = history.files().collect();
    files.sort_unstable();
    files.dedup();
    files
}

fn access_counts(history: &Trace) -> HashMap<FileId, u64> {
    let mut counts = HashMap::new();
    for f in history.files() {
        *counts.entry(f).or_insert(0u64) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> Trace {
        Trace::from_files([1u64, 2, 3, 1, 2, 3, 9, 1, 2].to_vec())
    }

    #[test]
    fn from_order_assigns_consecutive_slots() {
        let l = Layout::from_order([FileId(5), FileId(7), FileId(5), FileId(9)]);
        assert_eq!(l.slot(FileId(5)), Some(0));
        assert_eq!(l.slot(FileId(7)), Some(1));
        assert_eq!(l.slot(FileId(9)), Some(2));
        assert_eq!(l.len(), 3);
        assert_eq!(l.slot(FileId(1)), None);
    }

    #[test]
    fn all_strategies_place_every_distinct_file() {
        let h = history();
        for layout in [
            Layout::hashed(&h),
            Layout::by_frequency(&h),
            Layout::organ_pipe(&h),
            Layout::grouped(&h, 3),
        ] {
            assert_eq!(layout.len(), 4);
            for f in [1u64, 2, 3, 9] {
                assert!(layout.slot(FileId(f)).is_some(), "f{f} unplaced");
            }
        }
    }

    #[test]
    fn slots_are_distinct_and_dense() {
        let h = history();
        for layout in [
            Layout::hashed(&h),
            Layout::by_frequency(&h),
            Layout::organ_pipe(&h),
            Layout::grouped(&h, 2),
        ] {
            let mut slots: Vec<usize> = [1u64, 2, 3, 9]
                .iter()
                .map(|&f| layout.slot(FileId(f)).unwrap())
                .collect();
            slots.sort_unstable();
            assert_eq!(slots, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn frequency_orders_hot_first() {
        let h = history();
        let l = Layout::by_frequency(&h);
        // Counts: 1×3, 2×3, 3×2, 9×1; ties broken by id.
        assert_eq!(l.slot(FileId(1)), Some(0));
        assert_eq!(l.slot(FileId(2)), Some(1));
        assert_eq!(l.slot(FileId(3)), Some(2));
        assert_eq!(l.slot(FileId(9)), Some(3));
    }

    #[test]
    fn organ_pipe_puts_hottest_in_centre() {
        let h = Trace::from_files((0..100u64).flat_map(|i| vec![0; 5].into_iter().chain([i])));
        let l = Layout::organ_pipe(&h);
        let n = l.len();
        let hot = l.slot(FileId(0)).unwrap();
        assert!(
            (hot as i64 - (n / 2) as i64).unsigned_abs() <= 1,
            "hot file at {hot} of {n}"
        );
    }

    #[test]
    fn grouped_places_related_files_adjacently() {
        let h = Trace::from_files([1u64, 2, 3, 1, 2, 3, 1, 2, 3].to_vec());
        let l = Layout::grouped(&h, 3);
        let s1 = l.slot(FileId(1)).unwrap() as i64;
        let s2 = l.slot(FileId(2)).unwrap() as i64;
        let s3 = l.slot(FileId(3)).unwrap() as i64;
        assert!(
            (s1 - s2).abs() <= 2 && (s2 - s3).abs() <= 2,
            "{s1} {s2} {s3}"
        );
    }

    #[test]
    fn empty_history_gives_empty_layouts() {
        let h = Trace::default();
        assert!(Layout::hashed(&h).is_empty());
        assert!(Layout::by_frequency(&h).is_empty());
        assert!(Layout::organ_pipe(&h).is_empty());
        assert!(Layout::grouped(&h, 4).is_empty());
    }
}

//! A small, dependency-free Zipf sampler.
//!
//! File system workloads exhibit severe popularity skew; the paper leans on
//! this ("a very high skew in access frequencies"). We sample ranks from a
//! Zipf distribution with exponent `s`: `P(rank k) ∝ 1 / k^s` for
//! `k = 1..=n`. Sampling uses a precomputed cumulative table and binary
//! search, which is plenty fast for the universe sizes the generator uses.

use fgcache_types::rng::RandomSource;
use fgcache_types::ValidationError;

/// A Zipf distribution over `0..n` (rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `n == 0`, or if `s` is negative or
    /// not finite.
    pub fn new(n: usize, s: f64) -> Result<Self, ValidationError> {
        if n == 0 {
            return Err(ValidationError::new("n", "must be greater than zero"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ValidationError::new(
                "s",
                "exponent must be finite and non-negative",
            ));
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise so the last entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cumulative })
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the distribution is over zero items (never true
    /// for a constructed `Zipf`; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(idx) => (idx + 1).min(self.cumulative.len() - 1),
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }

    /// Probability of sampling `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    pub fn probability(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_types::rng::SeededRng;

    #[test]
    fn rejects_empty_and_bad_exponent() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 1.2).unwrap();
        let mut rng = SeededRng::new(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(50, 0.9).unwrap();
        let total: f64 = (0..z.len()).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_ranks_are_more_popular() {
        let z = Zipf::new(100, 1.1).unwrap();
        for k in 1..100 {
            assert!(z.probability(k - 1) >= z.probability(k));
        }
    }

    #[test]
    fn samples_stay_in_range_and_skew_low() {
        let z = Zipf::new(20, 1.2).unwrap();
        let mut rng = SeededRng::new(42);
        let mut counts = vec![0usize; 20];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 20);
            counts[k] += 1;
        }
        // Rank 0 should clearly dominate rank 19 under heavy skew.
        assert!(counts[0] > counts[19] * 4, "counts: {counts:?}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(30, 1.0).unwrap();
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    /// A stub source emitting a fixed `u64` stream — lets tests steer
    /// `next_f64` to exact cumulative-boundary values.
    struct FixedSource(Vec<u64>, usize);

    impl RandomSource for FixedSource {
        fn next_u64(&mut self) -> u64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
    }

    /// The `u64` whose `next_f64` image is exactly `u` (must be a
    /// multiple of 2⁻⁵³).
    fn word_for(u: f64) -> u64 {
        ((u * (1u64 << 53) as f64) as u64) << 11
    }

    #[test]
    fn exact_boundary_draws_map_to_the_next_rank() {
        // n=2, s=0 ⇒ cumulative = [0.5, 1.0]. A draw of exactly 0.5
        // lands on the `Ok` branch of the binary search; rank 0 owns
        // [0, 0.5), so the sample must be rank 1 — and the largest
        // representable draw (1 − 2⁻⁵³) must stay in range too.
        let z = Zipf::new(2, 0.0).unwrap();
        let mut exact = FixedSource(vec![word_for(0.5)], 0);
        assert_eq!(z.sample(&mut exact), 1);
        let mut top = FixedSource(vec![u64::MAX], 0);
        assert_eq!(z.sample(&mut top), 1);
        let mut zero = FixedSource(vec![0], 0);
        assert_eq!(z.sample(&mut zero), 0);
    }

    #[test]
    fn harmonic_exponent_matches_the_harmonic_series() {
        // s = 1: P(rank k) = (1/(k+1)) / H_n exactly.
        let n = 100;
        let z = Zipf::new(n, 1.0).unwrap();
        let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        for k in [0usize, 1, 9, 99] {
            let expect = 1.0 / ((k + 1) as f64 * h);
            assert!(
                (z.probability(k) - expect).abs() < 1e-12,
                "rank {k}: {} vs {expect}",
                z.probability(k)
            );
        }
        // The defining ratio of the harmonic case.
        assert!((z.probability(0) / z.probability(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn universe_of_one_is_degenerate_at_every_exponent() {
        for s in [0.0, 1.0, 2.5] {
            let z = Zipf::new(1, s).unwrap();
            assert_eq!(z.len(), 1);
            assert_eq!(z.probability(0), 1.0);
            let mut rng = SeededRng::new(3);
            for _ in 0..50 {
                assert_eq!(z.sample(&mut rng), 0);
            }
        }
    }

    #[test]
    fn samples_stay_in_bounds_across_exponent_edges() {
        // The edges the samplers' callers cast through `FileId(rank as
        // u64)`: every draw must stay strictly below n so the cast can
        // never manufacture an out-of-universe file id.
        for &(n, s) in &[(1usize, 0.0f64), (2, 0.0), (7, 1.0), (64, 3.0)] {
            let z = Zipf::new(n, s).unwrap();
            let mut rng = SeededRng::new(11);
            for _ in 0..5_000 {
                assert!(z.sample(&mut rng) < n, "n={n} s={s}");
            }
        }
    }

    #[test]
    fn golden_samples_pin_the_draw_sequence() {
        // Any change to the cumulative-table construction or the search
        // silently re-shuffles every seeded trace in the workspace;
        // these pins turn that into a visible break.
        let z = Zipf::new(10, 1.0).unwrap();
        let mut rng = SeededRng::new(2002);
        let draws: Vec<usize> = (0..12).map(|_| z.sample(&mut rng)).collect();
        let again: Vec<usize> = {
            let mut rng = SeededRng::new(2002);
            (0..12).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draws, again, "sampling must be a pure function of the seed");
        assert!(draws.iter().all(|&d| d < 10));
        assert_eq!(draws, GOLDEN, "pinned draw sequence changed");
    }

    /// The pinned seed-2002 draw sequence for `Zipf::new(10, 1.0)`.
    const GOLDEN: [usize; 12] = [1, 0, 3, 0, 0, 0, 1, 0, 7, 0, 6, 7];
}

//! The paper's headline claims (§1 abstract / §6 conclusions) as one
//! reproducible summary table:
//!
//! * grouping cuts client LRU demand fetches by 50–60 %;
//! * for intervening client caches below ~200 files, the aggregating
//!   server cache improves hit rates by 20 to over 1200 %;
//! * for larger client caches it still delivers 30–60 % hit rates where
//!   plain LRU collapses toward zero.

use fgcache_trace::Trace;
use fgcache_types::ValidationError;

use crate::client::{client_sweep, ClientSweepConfig};
use crate::report::{pct, Table};
use crate::server::{two_level_sweep, ServerScheme, TwoLevelConfig};
use fgcache_cache::PolicyKind;

/// Headline numbers for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineRow {
    /// Workload label.
    pub workload: String,
    /// Client cache capacity used for the fetch-reduction comparison.
    pub client_capacity: usize,
    /// Demand fetches with plain LRU (group size 1).
    pub lru_fetches: u64,
    /// Demand fetches with groups of five.
    pub g5_fetches: u64,
    /// Relative reduction in demand fetches, `1 − g5/lru`.
    pub fetch_reduction: f64,
    /// Server hit rate (plain LRU) behind a small intervening cache.
    pub small_filter_lru_hit: f64,
    /// Server hit rate (aggregating g5) behind a small intervening cache.
    pub small_filter_g5_hit: f64,
    /// Server hit rate (plain LRU) behind a large intervening cache.
    pub large_filter_lru_hit: f64,
    /// Server hit rate (aggregating g5) behind a large intervening cache.
    pub large_filter_g5_hit: f64,
}

impl HeadlineRow {
    /// Relative server hit-rate gain behind the small filter,
    /// `(g5 − lru)/lru`; `None` when the LRU hit rate is (near) zero and
    /// the ratio is unbounded.
    pub fn small_filter_gain(&self) -> Option<f64> {
        if self.small_filter_lru_hit < 1e-6 {
            None
        } else {
            Some((self.small_filter_g5_hit - self.small_filter_lru_hit) / self.small_filter_lru_hit)
        }
    }
}

/// The complete headline summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineSummary {
    /// One row per workload.
    pub rows: Vec<HeadlineRow>,
    /// Client capacity used for the fetch comparison.
    pub client_capacity: usize,
    /// Small intervening-filter capacity.
    pub small_filter: usize,
    /// Large intervening-filter capacity.
    pub large_filter: usize,
    /// Server cache capacity.
    pub server_capacity: usize,
}

impl HeadlineSummary {
    /// Renders the summary as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "headline (client cache {}, server cache {}, filters {}/{})",
                self.client_capacity, self.server_capacity, self.small_filter, self.large_filter
            ),
            [
                "workload",
                "lru fetches",
                "g5 fetches",
                "reduction",
                "srv lru (small)",
                "srv g5 (small)",
                "gain",
                "srv lru (large)",
                "srv g5 (large)",
            ],
        );
        for r in &self.rows {
            t.push_row([
                r.workload.clone(),
                r.lru_fetches.to_string(),
                r.g5_fetches.to_string(),
                pct(r.fetch_reduction),
                pct(r.small_filter_lru_hit),
                pct(r.small_filter_g5_hit),
                r.small_filter_gain()
                    .map(|g| format!("{:+.0}%", g * 100.0))
                    .unwrap_or_else(|| "∞".to_string()),
                pct(r.large_filter_lru_hit),
                pct(r.large_filter_g5_hit),
            ]);
        }
        t
    }
}

/// Computes the headline summary over the given labelled traces, with the
/// paper's canonical parameters: client cache 300, server cache 300,
/// small/large filters 100/450, group size 5.
///
/// # Errors
///
/// Returns a [`ValidationError`] if any underlying sweep rejects its
/// parameters (never, for the built-in constants, unless a trace is
/// pathological).
pub fn headline_summary(traces: &[(String, &Trace)]) -> Result<HeadlineSummary, ValidationError> {
    let client_capacity = 300;
    let small_filter = 100;
    let large_filter = 450;
    let server_capacity = 300;
    let mut rows = Vec::with_capacity(traces.len());
    for (label, trace) in traces {
        let client_points = client_sweep(
            trace,
            &ClientSweepConfig {
                capacities: vec![client_capacity],
                group_sizes: vec![1, 5],
                successor_capacity: 8,
            },
        )?;
        let lru_fetches = client_points
            .iter()
            .find(|p| p.group_size == 1)
            .expect("grid contains g1")
            .demand_fetches;
        let g5_fetches = client_points
            .iter()
            .find(|p| p.group_size == 5)
            .expect("grid contains g5")
            .demand_fetches;
        let server_points = two_level_sweep(
            trace,
            &TwoLevelConfig {
                filter_capacities: vec![small_filter, large_filter],
                server_capacity,
                schemes: vec![
                    ServerScheme::Aggregating { group_size: 5 },
                    ServerScheme::Policy(PolicyKind::Lru),
                ],
                successor_capacity: 8,
            },
        )?;
        let hit = |filter: usize, scheme: &str| {
            server_points
                .iter()
                .find(|p| p.filter_capacity == filter && p.scheme == scheme)
                .expect("grid covers all points")
                .server_hit_rate
        };
        rows.push(HeadlineRow {
            workload: label.clone(),
            client_capacity,
            lru_fetches,
            g5_fetches,
            fetch_reduction: if lru_fetches == 0 {
                0.0
            } else {
                1.0 - g5_fetches as f64 / lru_fetches as f64
            },
            small_filter_lru_hit: hit(small_filter, "lru"),
            small_filter_g5_hit: hit(small_filter, "g5"),
            large_filter_lru_hit: hit(large_filter, "lru"),
            large_filter_g5_hit: hit(large_filter, "g5"),
        });
    }
    Ok(HeadlineSummary {
        rows,
        client_capacity,
        small_filter,
        large_filter,
        server_capacity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_trace::synth::{SynthConfig, WorkloadProfile};

    #[test]
    fn summary_shapes_match_paper_direction() {
        let trace = SynthConfig::profile(WorkloadProfile::Server)
            .events(60_000)
            .seed(2)
            .build()
            .unwrap()
            .generate();
        let summary = headline_summary(&[("server".into(), &trace)]).unwrap();
        let row = &summary.rows[0];
        assert!(
            row.fetch_reduction > 0.3,
            "reduction {}",
            row.fetch_reduction
        );
        assert!(
            row.small_filter_g5_hit > row.small_filter_lru_hit,
            "g5 {} vs lru {}",
            row.small_filter_g5_hit,
            row.small_filter_lru_hit
        );
        assert!(row.large_filter_g5_hit > row.large_filter_lru_hit);
        let table = summary.table();
        assert!(table.render().contains("server"));
    }

    #[test]
    fn gain_is_none_when_lru_hits_zero() {
        let row = HeadlineRow {
            workload: "x".into(),
            client_capacity: 300,
            lru_fetches: 10,
            g5_fetches: 5,
            fetch_reduction: 0.5,
            small_filter_lru_hit: 0.0,
            small_filter_g5_hit: 0.4,
            large_filter_lru_hit: 0.0,
            large_filter_g5_hit: 0.3,
        };
        assert!(row.small_filter_gain().is_none());
    }
}

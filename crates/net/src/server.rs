//! An event-driven TCP group-fetch server over any [`ServeBackend`].
//!
//! [`BoundServer::bind`] takes an address (use port 0 for an ephemeral
//! loopback port) and a shared [`ShardedAggregatingCache`];
//! [`BoundServer::bind_backend`] accepts any [`ServeBackend`] (a cluster
//! node, for instance). [`BoundServer::run`] then serves the
//! [wire protocol](crate::wire) until asked to stop.
//!
//! # Architecture
//!
//! One **readiness loop** owns every socket. The listener and all
//! connections are nonblocking; each loop iteration accepts new
//! connections (up to [`DEFAULT_MAX_CONNS`] or the
//! [`BoundServer::with_max_conns`] override), collects finished work,
//! flushes partially-written replies, and reads whatever bytes have
//! arrived, reassembling frames with a per-connection partial-read state
//! machine. Connection count is no longer bounded by thread count and an
//! idle connection costs a few hundred bytes, not a stack.
//!
//! Decoded requests are handed to a **bounded worker pool** (a
//! `Mutex<VecDeque>` + `Condvar` job queue; [`DEFAULT_WORKERS`] threads
//! by default) so group fetches execute off the I/O loop. Workers may
//! finish out of order, so every inbound frame gets a per-connection
//! sequence number and completions sit in a small reorder buffer until
//! they can be released *in request order* — the pipelined client matches
//! replies to requests positionally, and that contract survives the
//! worker pool.
//!
//! # Backpressure
//!
//! Per connection, two bounds gate *reading* (never writing): at most
//! [`DEFAULT_MAX_PENDING`] requests may be in flight, and at most
//! [`DEFAULT_MAX_OUTBOUND_BYTES`] reply bytes may sit unwritten. A slow
//! reader's connection simply stops being read — its bytes stay in kernel
//! buffers and the peer's send window closes — while every other
//! connection proceeds untouched. Queued replies are always released and
//! flushed, so total buffered output per connection is bounded by the
//! outbound cap plus the replies to the (capped) in-flight requests.
//!
//! # Exactly-once fetches
//!
//! Unchanged from the thread-per-connection server: all connections share
//! one [`ReplyCache`] behind a mutex, and for backends that
//! [serialise](ServeBackend::serializes_execution) a fetch executes
//! *while holding it* — a retry racing its original request, possibly on
//! a different pooled connection or a different worker, either finds the
//! remembered reply or blocks until the original finishes, never
//! double-executing. Backends that deduplicate internally (a cluster
//! node, whose fetches may block on a *peer's* server) execute outside
//! the lock, exactly as before.
//!
//! # Shutdown
//!
//! Stopping is cooperative: a client sends `Shutdown` (or the owner calls
//! [`ServerHandle::stop`], or sets the [`BoundServer::shutdown_flag`]).
//! The loop then stops accepting and stops reading, drains in-flight jobs
//! and flushes every queued reply (bounded by a two-second drain
//! deadline), closes the job queue so the workers exit, and returns. The
//! `ShutdownAck` is sequenced like any reply, so it is delivered after
//! every reply the same connection pipelined ahead of it.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use fgcache_core::ShardedAggregatingCache;
use fgcache_types::FileId;

use crate::dedup::{ReplyCache, DEFAULT_REPLY_CACHE_CAPACITY};
use crate::transport::{FileReply, GroupReply};
use crate::wire::{decode_fetch_into, Message, WireStats, MAX_FRAME_LEN};

/// Default hard cap on concurrently-held connections; accepts beyond it
/// are deferred to the kernel backlog until a slot frees.
pub const DEFAULT_MAX_CONNS: usize = 1024;

/// Default worker-pool size (threads executing fetches off the I/O loop).
pub const DEFAULT_WORKERS: usize = 4;

/// Default per-connection bound on requests in flight (dispatched but not
/// yet released to the write buffer). Reading stops at the bound.
pub const DEFAULT_MAX_PENDING: usize = 128;

/// Default per-connection bound on unwritten reply bytes. Reading stops
/// at the bound; see the [module docs](self) for the true total bound.
pub const DEFAULT_MAX_OUTBOUND_BYTES: usize = 256 * 1024;

/// How long the loop sleeps per iteration once fully idle (after a few
/// plain yields); bounds added latency for the first frame after a lull.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Idle iterations spent on `yield_now` before sleeping — on a busy or
/// single-core host this hands the CPU straight to the workers.
const YIELD_SPINS: u32 = 4;

/// A connection with no recent activity is scanned for readable bytes
/// only every this-many iterations, so hundreds of idle connections cost
/// a handful of read syscalls per iteration instead of one each.
const COLD_SCAN_PERIOD: u64 = 32;

/// Iterations of "hot" status granted by any progress on a connection.
const HOT_ITERS: u64 = 64;

/// Upper bound on the shutdown drain (in-flight jobs + queued replies).
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on pooled scratch buffers retained for reuse.
const POOL_CAP: usize = 256;

/// Compact the write buffer once this many flushed bytes accumulate at
/// its front.
const COMPACT_THRESHOLD: usize = 32 * 1024;

/// What a [`BoundServer`] serves fetches from: a plain cache or anything
/// cache-shaped (a cluster node that routes to peers, say). The server
/// owns framing, connection handling, retry deduplication and shutdown;
/// the backend owns what a fetch *means*.
pub trait ServeBackend: Send + Sync {
    /// Serves one group fetch, returning per-file provenance.
    fn serve_group(&self, request_id: u64, files: &[FileId]) -> GroupReply;

    /// Serves one *owned* group fetch — the depth-bounded cluster proxy
    /// frame, which the backend must answer locally and never forward
    /// onward. The default treats it like any other fetch, which is
    /// correct for backends with no notion of ownership.
    fn serve_owned(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        self.serve_group(request_id, files)
    }

    /// This backend's cache counters, for `StatsReply` (the server adds
    /// its own reply-cache hits on top).
    fn wire_stats(&self) -> WireStats;

    /// Applies a pushed membership view, returning the epoch the backend
    /// now holds (its current one if `epoch` was stale).
    ///
    /// # Errors
    ///
    /// The default rejects the update: a plain cache has no membership.
    fn apply_cluster_update(&self, epoch: u64, members: &[(u64, String)]) -> Result<u64, String> {
        let _ = (epoch, members);
        Err("this server is not a cluster node".to_string())
    }

    /// Whether the server must hold its reply cache across execution to
    /// make fetches exactly-once (the default). Backends that deduplicate
    /// internally — a cluster node, whose fetches may block on a *peer's*
    /// server — return `false`, so a fetch executes outside the
    /// server-wide lock: two nodes proxying to each other would otherwise
    /// deadlock, each holding its own reply cache while waiting on the
    /// other's.
    fn serializes_execution(&self) -> bool {
        true
    }
}

impl ServeBackend for ShardedAggregatingCache {
    fn serve_group(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        let files: Vec<FileReply> = files
            .iter()
            .map(|&file| FileReply {
                file,
                outcome: self.handle_access(file),
            })
            .collect();
        GroupReply { request_id, files }
    }

    fn wire_stats(&self) -> WireStats {
        let stats = self.stats();
        let group = self.group_stats();
        WireStats {
            accesses: stats.accesses,
            hits: stats.hits,
            misses: stats.misses,
            speculative_inserts: stats.speculative_inserts,
            speculative_hits: stats.speculative_hits,
            evictions: stats.evictions,
            demand_fetches: group.demand_fetches,
            files_transferred: group.files_transferred,
            members_already_resident: group.members_already_resident,
            reply_cache_hits: 0,
        }
    }
}

/// A TCP group-fetch server bound to an address but not yet running.
pub struct BoundServer {
    listener: TcpListener,
    backend: Arc<dyn ServeBackend>,
    shutdown: Arc<AtomicBool>,
    dedup_capacity: usize,
    max_conns: usize,
    workers: usize,
    max_pending: usize,
    max_outbound: usize,
}

impl std::fmt::Debug for BoundServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundServer")
            .field("addr", &self.local_addr())
            .field("dedup_capacity", &self.dedup_capacity)
            .field("max_conns", &self.max_conns)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl BoundServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port), serving fetches from `cache`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cache: Arc<ShardedAggregatingCache>) -> std::io::Result<Self> {
        Self::bind_backend(addr, cache)
    }

    /// Binds to `addr`, serving fetches from an arbitrary
    /// [`ServeBackend`] (e.g. a cluster node).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_backend(
        addr: &str,
        backend: Arc<impl ServeBackend + 'static>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(BoundServer {
            listener,
            backend,
            shutdown: Arc::new(AtomicBool::new(false)),
            dedup_capacity: DEFAULT_REPLY_CACHE_CAPACITY,
            max_conns: DEFAULT_MAX_CONNS,
            workers: DEFAULT_WORKERS,
            max_pending: DEFAULT_MAX_PENDING,
            max_outbound: DEFAULT_MAX_OUTBOUND_BYTES,
        })
    }

    /// Overrides the reply-cache window (see
    /// [`ReplyCache`]); 0 disables retry deduplication.
    #[must_use]
    pub fn with_dedup_capacity(mut self, capacity: usize) -> Self {
        self.dedup_capacity = capacity;
        self
    }

    /// Overrides the connection cap (clamped to at least 1). Accepts
    /// beyond the cap wait in the kernel backlog until a slot frees.
    #[must_use]
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Overrides the worker-pool size (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the per-connection backpressure bounds (each clamped to
    /// at least 1): requests in flight, and unwritten reply bytes.
    #[must_use]
    pub fn with_queue_limits(mut self, max_pending: usize, max_outbound_bytes: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self.max_outbound = max_outbound_bytes.max(1);
        self
    }

    /// The bound address, as a `host:port` string clients can connect to.
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string())
    }

    /// The shared shutdown flag (for embedding the server under an
    /// external signal handler).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the readiness loop on the calling thread until shut down,
    /// with the worker pool on scoped threads beside it.
    pub fn run(self) {
        let BoundServer {
            listener,
            backend,
            shutdown,
            dedup_capacity,
            max_conns,
            workers,
            max_pending,
            max_outbound,
        } = self;
        if listener.set_nonblocking(true).is_err() {
            return; // cannot serve readiness-style without it
        }
        let dedup = Mutex::new(ReplyCache::new(dedup_capacity));
        let shared = Shared::new();
        let backend = &*backend;
        let shutdown = &*shutdown;
        let dedup = &dedup;
        let shared = &shared;
        thread::scope(|scope| {
            for _ in 0..workers.max(1) {
                scope.spawn(move || worker_loop(shared, backend, dedup));
            }
            let mut event_loop = EventLoop {
                listener,
                slots: Vec::new(),
                free: Vec::new(),
                live: 0,
                iter: 0,
                max_conns: max_conns.max(1),
                max_pending: max_pending.max(1),
                max_outbound: max_outbound.max(1),
            };
            event_loop.run(shared, shutdown);
            // Unblock the workers so the scope can join them. Jobs still
            // queued (only possible past the drain deadline) are executed
            // and their completions dropped.
            shared.close();
        });
    }

    /// Runs the server on a background thread, returning a handle that
    /// can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::clone(&self.shutdown);
        let join = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            join,
        }
    }
}

/// A running server on a background thread (from [`BoundServer::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    shutdown: Arc<AtomicBool>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The server's `host:port` address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the server: sets the flag, waits for the loop to drain
    /// in-flight replies and the workers to exit.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::Release);
        self.join.join().expect("server thread panicked");
    }
}

/// One unit of backend work, tagged with enough to route its completion:
/// connection slot, that slot's generation (stale completions for a
/// reused slot are discarded), and the per-connection sequence number
/// that fixes the reply's position in the outbound order.
struct Job {
    slot: usize,
    generation: u64,
    seq: u64,
    kind: JobKind,
}

enum JobKind {
    Fetch {
        request_id: u64,
        files: Vec<FileId>,
        owned: bool,
    },
    Stats {
        request_id: u64,
    },
    ClusterUpdate {
        request_id: u64,
        epoch: u64,
        members: Vec<(u64, String)>,
    },
}

/// A finished job: the encoded reply frame, routed by slot + generation.
struct Done {
    slot: usize,
    generation: u64,
    seq: u64,
    frame: Vec<u8>,
}

struct JobQueue {
    queue: VecDeque<Job>,
    closed: bool,
}

/// State shared between the readiness loop and the worker pool: the job
/// queue, the completion queue, and scratch-buffer pools that keep the
/// per-frame steady state allocation-free.
struct Shared {
    jobs: Mutex<JobQueue>,
    jobs_ready: Condvar,
    done: Mutex<Vec<Done>>,
    frame_bufs: Mutex<Vec<Vec<u8>>>,
    file_bufs: Mutex<Vec<Vec<FileId>>>,
}

impl Shared {
    fn new() -> Self {
        Shared {
            jobs: Mutex::new(JobQueue {
                queue: VecDeque::new(),
                closed: false,
            }),
            jobs_ready: Condvar::new(),
            done: Mutex::new(Vec::new()),
            frame_bufs: Mutex::new(Vec::new()),
            file_bufs: Mutex::new(Vec::new()),
        }
    }

    fn push_job(&self, job: Job) {
        self.lock_jobs().queue.push_back(job);
        self.jobs_ready.notify_one();
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// empty (remaining jobs are still drained after close).
    fn next_job(&self) -> Option<Job> {
        let mut guard = self.lock_jobs();
        loop {
            if let Some(job) = guard.queue.pop_front() {
                return Some(job);
            }
            if guard.closed {
                return None;
            }
            guard = self
                .jobs_ready
                .wait(guard)
                .expect("a worker panicked while holding the job queue");
        }
    }

    fn close(&self) {
        self.lock_jobs().closed = true;
        self.jobs_ready.notify_all();
    }

    fn lock_jobs(&self) -> MutexGuard<'_, JobQueue> {
        self.jobs
            .lock()
            .expect("a worker panicked while holding the job queue")
    }

    fn push_done(&self, done: Done) {
        self.done
            .lock()
            .expect("the server loop panicked while holding the completion queue")
            .push(done);
    }

    /// Swaps the completion queue into `into` (reusing its storage).
    fn drain_done(&self, into: &mut Vec<Done>) {
        into.clear();
        let mut guard = self
            .done
            .lock()
            .expect("a worker panicked while holding the completion queue");
        std::mem::swap(&mut *guard, into);
    }

    fn take_frame_buf(&self) -> Vec<u8> {
        self.frame_bufs
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn recycle_frame_buf(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.frame_bufs.lock().expect("scratch pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    fn take_file_buf(&self) -> Vec<FileId> {
        self.file_bufs
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn recycle_file_buf(&self, mut buf: Vec<FileId>) {
        buf.clear();
        let mut pool = self.file_bufs.lock().expect("scratch pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }
}

/// One worker: pops jobs, executes them against the backend (with the
/// same exactly-once discipline as ever — see [`serve_fetch`]), encodes
/// the reply into a pooled buffer, and posts the completion.
fn worker_loop(shared: &Shared, backend: &dyn ServeBackend, dedup: &Mutex<ReplyCache>) {
    while let Some(job) = shared.next_job() {
        let reply = match job.kind {
            JobKind::Fetch {
                request_id,
                files,
                owned,
            } => {
                let reply = serve_fetch(backend, dedup, request_id, &files, owned);
                shared.recycle_file_buf(files);
                Message::FetchReply {
                    request_id: reply.request_id,
                    files: reply.files,
                }
            }
            JobKind::Stats { request_id } => {
                let mut stats = backend.wire_stats();
                stats.reply_cache_hits += lock_dedup(dedup).hits();
                Message::StatsReply { request_id, stats }
            }
            JobKind::ClusterUpdate {
                request_id,
                epoch,
                members,
            } => match backend.apply_cluster_update(epoch, &members) {
                Ok(held) => Message::ClusterUpdateAck {
                    request_id,
                    epoch: held,
                },
                Err(reason) => Message::Error {
                    request_id,
                    message: reason,
                },
            },
        };
        let mut frame = shared.take_frame_buf();
        reply.encode_into(&mut frame);
        shared.push_done(Done {
            slot: job.slot,
            generation: job.generation,
            seq: job.seq,
            frame,
        });
    }
}

/// Partial-read state: a frame header or body may arrive split across
/// any number of reads (down to one byte each) and is reassembled here.
enum ReadPhase {
    /// Collecting the 4-byte length prefix.
    Header { filled: usize },
    /// Collecting `len` payload bytes.
    Payload { filled: usize, len: usize },
}

/// Per-connection state owned by the readiness loop.
struct Conn {
    stream: TcpStream,
    phase: ReadPhase,
    header: [u8; 4],
    /// Reused payload scratch; capacity persists across frames.
    payload: Vec<u8>,
    /// Sequence number assigned to the next inbound frame.
    next_seq: u64,
    /// Sequence number of the next reply to release into `outbound`.
    next_release: u64,
    /// Frames dispatched (or completed inline) but not yet released.
    pending: usize,
    /// Out-of-order completions waiting for their turn, `(seq, frame)`.
    completed: Vec<(u64, Vec<u8>)>,
    /// Released-but-unwritten reply bytes; `write_pos` marks progress.
    outbound: Vec<u8>,
    write_pos: usize,
    /// Iteration until which this connection is scanned every pass.
    hot_until: u64,
    read_eof: bool,
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, hot_until: u64) -> Self {
        Conn {
            stream,
            phase: ReadPhase::Header { filled: 0 },
            header: [0; 4],
            payload: Vec::new(),
            next_seq: 0,
            next_release: 0,
            pending: 0,
            completed: Vec::new(),
            outbound: Vec::new(),
            write_pos: 0,
            hot_until,
            read_eof: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Unwritten reply bytes currently queued.
    fn backlog(&self) -> usize {
        self.outbound.len() - self.write_pos
    }
}

/// Whether the loop may read more frames from a connection: both
/// backpressure bounds must have room. Reading — never writing — is what
/// stops, so a slow reader throttles itself without unbounded buffering.
fn may_read(pending: usize, backlog_bytes: usize, max_pending: usize, max_outbound: usize) -> bool {
    pending < max_pending && backlog_bytes < max_outbound
}

/// A connection slot; `generation` increments on reuse so completions
/// for a previous occupant are recognised and dropped.
struct Slot {
    generation: u64,
    conn: Option<Conn>,
}

struct EventLoop {
    listener: TcpListener,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    iter: u64,
    max_conns: usize,
    max_pending: usize,
    max_outbound: usize,
}

impl EventLoop {
    fn run(&mut self, shared: &Shared, shutdown: &AtomicBool) {
        let mut done_batch: Vec<Done> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        let mut idle_spins: u32 = 0;
        loop {
            self.iter += 1;
            let draining = shutdown.load(Ordering::Acquire);
            if draining && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_TIMEOUT);
            }
            let mut progress = false;
            if !draining {
                progress |= self.accept_ready(shared);
            }
            progress |= self.route_completions(shared, &mut done_batch);
            progress |= self.pump_connections(shared, shutdown, draining);
            self.reap_dead(shared);
            if draining
                && (self.fully_drained() || drain_deadline.is_some_and(|d| Instant::now() >= d))
            {
                break;
            }
            if progress {
                idle_spins = 0;
            } else {
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins <= YIELD_SPINS {
                    thread::yield_now();
                } else {
                    thread::sleep(IDLE_SLEEP);
                }
            }
        }
    }

    /// Accepts until the listener would block or the cap is reached.
    /// At the cap, accepting simply stops: pending connections wait in
    /// the kernel backlog (deferred, not refused) until a slot frees.
    fn accept_ready(&mut self, _shared: &Shared) -> bool {
        let mut progress = false;
        while self.live < self.max_conns {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // cannot serve it; drop cleanly
                    }
                    let _ = stream.set_nodelay(true);
                    let conn = Conn::new(stream, self.iter + HOT_ITERS);
                    match self.free.pop() {
                        Some(slot) => self.slots[slot].conn = Some(conn),
                        None => self.slots.push(Slot {
                            generation: 0,
                            conn: Some(conn),
                        }),
                    }
                    self.live += 1;
                    progress = true;
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break, // transient (e.g. EMFILE); retry next pass
            }
        }
        progress
    }

    /// Drains worker completions into their connections' reorder
    /// buffers, dropping any whose slot generation no longer matches.
    fn route_completions(&mut self, shared: &Shared, batch: &mut Vec<Done>) -> bool {
        shared.drain_done(batch);
        let mut progress = !batch.is_empty();
        for done in batch.drain(..) {
            let slot = &mut self.slots[done.slot];
            match slot.conn.as_mut() {
                Some(conn) if slot.generation == done.generation && !conn.dead => {
                    conn.completed.push((done.seq, done.frame));
                    conn.hot_until = self.iter + HOT_ITERS;
                }
                _ => {
                    shared.recycle_frame_buf(done.frame);
                    progress = true;
                }
            }
        }
        progress
    }

    /// Per connection: release in-order completions, flush writes, then
    /// read and dispatch new frames (unless draining or backpressured).
    fn pump_connections(&mut self, shared: &Shared, shutdown: &AtomicBool, draining: bool) -> bool {
        let mut progress = false;
        for slot_idx in 0..self.slots.len() {
            let Slot { generation, conn } = &mut self.slots[slot_idx];
            let Some(conn) = conn.as_mut() else { continue };
            let generation = *generation;
            progress |= release_ready(conn, shared);
            progress |= write_ready(conn);
            if !draining && !conn.dead && !conn.read_eof && !conn.close_after_flush {
                let hot = self.iter < conn.hot_until;
                if hot || self.iter.is_multiple_of(COLD_SCAN_PERIOD) {
                    let read = read_ready(
                        conn,
                        slot_idx,
                        generation,
                        shared,
                        shutdown,
                        self.max_pending,
                        self.max_outbound,
                    );
                    if read {
                        conn.hot_until = self.iter + HOT_ITERS;
                    }
                    progress |= read;
                }
            }
            // A peer that closed its write side is parted with once every
            // reply it is owed has been flushed.
            if conn.read_eof && conn.pending == 0 && conn.backlog() == 0 {
                conn.dead = true;
            }
        }
        progress
    }

    fn reap_dead(&mut self, shared: &Shared) {
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let Some(conn) = slot.conn.as_ref() else {
                continue;
            };
            if !conn.dead {
                continue;
            }
            let Some(conn) = slot.conn.take() else {
                continue;
            };
            for (_, frame) in conn.completed {
                shared.recycle_frame_buf(frame);
            }
            slot.generation += 1;
            self.free.push(idx);
            self.live -= 1;
        }
    }

    /// Everything owed has been delivered: no in-flight requests and no
    /// unwritten bytes on any live connection.
    fn fully_drained(&self) -> bool {
        self.slots.iter().all(|slot| match &slot.conn {
            Some(conn) => conn.pending == 0 && conn.backlog() == 0,
            None => true,
        })
    }
}

/// Appends completions to the write buffer strictly in sequence order,
/// so replies leave in the order their requests arrived even when
/// workers finish out of order.
fn release_ready(conn: &mut Conn, shared: &Shared) -> bool {
    let mut progress = false;
    loop {
        let next = conn.next_release;
        let Some(idx) = conn.completed.iter().position(|&(seq, _)| seq == next) else {
            break;
        };
        let (_, frame) = conn.completed.swap_remove(idx);
        conn.outbound.extend_from_slice(&frame);
        shared.recycle_frame_buf(frame);
        conn.next_release += 1;
        conn.pending -= 1;
        progress = true;
    }
    progress
}

/// Writes as much of the outbound buffer as the socket will take,
/// resuming mid-frame across calls. Compacts the buffer when fully
/// flushed (or once enough dead bytes accumulate), so capacity is reused
/// rather than regrown.
fn write_ready(conn: &mut Conn) -> bool {
    let mut progress = false;
    loop {
        if conn.backlog() == 0 {
            conn.outbound.clear();
            conn.write_pos = 0;
            if conn.close_after_flush && conn.pending == 0 {
                conn.dead = true;
            }
            break;
        }
        match conn.stream.write(&conn.outbound[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.write_pos += n;
                progress = true;
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.write_pos >= COMPACT_THRESHOLD && conn.backlog() > 0 {
        conn.outbound.drain(..conn.write_pos);
        conn.write_pos = 0;
    }
    progress
}

/// Reads every byte the socket has ready (respecting the backpressure
/// bounds), reassembling frames and dispatching each complete one.
fn read_ready(
    conn: &mut Conn,
    slot: usize,
    generation: u64,
    shared: &Shared,
    shutdown: &AtomicBool,
    max_pending: usize,
    max_outbound: usize,
) -> bool {
    let mut progress = false;
    while !conn.dead
        && !conn.close_after_flush
        && may_read(conn.pending, conn.backlog(), max_pending, max_outbound)
    {
        match conn.phase {
            ReadPhase::Header { filled } => {
                match conn.stream.read(&mut conn.header[filled..]) {
                    Ok(0) => {
                        conn.read_eof = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        let filled = filled + n;
                        if filled < 4 {
                            conn.phase = ReadPhase::Header { filled };
                            continue;
                        }
                        let len = u32::from_le_bytes(conn.header);
                        if len > MAX_FRAME_LEN {
                            conn.dead = true; // unframeable garbage
                            break;
                        }
                        let len = len as usize;
                        conn.payload.clear();
                        conn.payload.resize(len, 0);
                        conn.phase = ReadPhase::Payload { filled: 0, len };
                        if len == 0 {
                            // An empty payload can never decode; the
                            // stream is desynced beyond recovery.
                            conn.dead = true;
                            break;
                        }
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            ReadPhase::Payload { filled, len } => {
                match conn.stream.read(&mut conn.payload[filled..len]) {
                    Ok(0) => {
                        conn.read_eof = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        let filled = filled + n;
                        if filled < len {
                            conn.phase = ReadPhase::Payload { filled, len };
                            continue;
                        }
                        conn.phase = ReadPhase::Header { filled: 0 };
                        dispatch_frame(conn, slot, generation, shared, shutdown);
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
    }
    progress
}

/// Routes one complete frame: fetches, stats and cluster updates become
/// worker jobs; shutdown and protocol errors are answered inline. Every
/// frame consumes one sequence number so replies release in order.
fn dispatch_frame(
    conn: &mut Conn,
    slot: usize,
    generation: u64,
    shared: &Shared,
    shutdown: &AtomicBool,
) {
    let seq = conn.next_seq;
    let mut files = shared.take_file_buf();
    // The allocation-free fast path: fetch frames decode straight into a
    // pooled buffer; everything else takes the cold full decode.
    match decode_fetch_into(&conn.payload, &mut files) {
        Ok(Some(header)) => {
            conn.next_seq += 1;
            conn.pending += 1;
            shared.push_job(Job {
                slot,
                generation,
                seq,
                kind: JobKind::Fetch {
                    request_id: header.request_id,
                    files,
                    owned: header.owned,
                },
            });
        }
        Ok(None) => {
            shared.recycle_file_buf(files);
            match Message::decode(&conn.payload) {
                Ok(Message::StatsRequest { request_id }) => {
                    conn.next_seq += 1;
                    conn.pending += 1;
                    shared.push_job(Job {
                        slot,
                        generation,
                        seq,
                        kind: JobKind::Stats { request_id },
                    });
                }
                Ok(Message::ClusterUpdate {
                    request_id,
                    epoch,
                    members,
                }) => {
                    conn.next_seq += 1;
                    conn.pending += 1;
                    shared.push_job(Job {
                        slot,
                        generation,
                        seq,
                        kind: JobKind::ClusterUpdate {
                            request_id,
                            epoch,
                            members,
                        },
                    });
                }
                Ok(Message::Shutdown { request_id }) => {
                    conn.next_seq += 1;
                    conn.pending += 1;
                    complete_inline(conn, seq, &Message::ShutdownAck { request_id }, shared);
                    conn.close_after_flush = true;
                    shutdown.store(true, Ordering::Release);
                }
                Ok(other) => {
                    conn.next_seq += 1;
                    conn.pending += 1;
                    let reply = Message::Error {
                        request_id: other.request_id(),
                        message: format!("unexpected client message: {other:?}"),
                    };
                    complete_inline(conn, seq, &reply, shared);
                }
                Err(_) => {
                    // A desynced stream cannot be re-framed; hang up.
                    conn.dead = true;
                }
            }
        }
        Err(_) => {
            shared.recycle_file_buf(files);
            conn.dead = true;
        }
    }
}

/// Completes a frame on the I/O loop itself (no worker round trip),
/// still sequenced like any other reply.
fn complete_inline(conn: &mut Conn, seq: u64, reply: &Message, shared: &Shared) {
    let mut frame = shared.take_frame_buf();
    reply.encode_into(&mut frame);
    conn.completed.push((seq, frame));
}

fn lock_dedup(dedup: &Mutex<ReplyCache>) -> MutexGuard<'_, ReplyCache> {
    dedup
        .lock()
        .expect("a worker panicked while holding the reply cache")
}

/// Serves one fetch, exactly-once per request id (see the [module
/// docs](self)). `owned` selects the depth-bounded
/// [`ServeBackend::serve_owned`] path.
///
/// For backends that [serialise](ServeBackend::serializes_execution), the
/// reply cache is held across execution, so a racing retry blocks rather
/// than double-executing. Backends that deduplicate internally execute
/// outside the lock (the get/insert around execution is then merely a
/// fast path; the backend's own dedup supplies exactly-once).
fn serve_fetch(
    backend: &dyn ServeBackend,
    dedup: &Mutex<ReplyCache>,
    request_id: u64,
    files: &[FileId],
    owned: bool,
) -> GroupReply {
    {
        let mut guard = lock_dedup(dedup);
        if let Some(remembered) = guard.get(request_id) {
            return remembered.clone();
        }
        if backend.serializes_execution() {
            let reply = execute(backend, request_id, files, owned);
            guard.insert(reply.clone());
            return reply;
        }
    }
    let reply = execute(backend, request_id, files, owned);
    lock_dedup(dedup).insert(reply.clone());
    reply
}

fn execute(
    backend: &dyn ServeBackend,
    request_id: u64,
    files: &[FileId],
    owned: bool,
) -> GroupReply {
    if owned {
        backend.serve_owned(request_id, files)
    } else {
        backend.serve_group(request_id, files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn may_read_gates_on_both_bounds() {
        // Room on both bounds: read.
        assert!(may_read(0, 0, 8, 1024));
        assert!(may_read(7, 1023, 8, 1024));
        // Pending at the cap: stop, regardless of outbound room.
        assert!(!may_read(8, 0, 8, 1024));
        // Outbound at the cap: stop, regardless of pending room.
        assert!(!may_read(0, 1024, 8, 1024));
        // Both saturated.
        assert!(!may_read(8, 1024, 8, 1024));
    }

    #[test]
    fn builder_knobs_clamp_zero_to_one() {
        let cache = Arc::new(
            fgcache_core::ShardedAggregatingCacheBuilder::new(20)
                .build()
                .expect("valid build"),
        );
        let server = BoundServer::bind("127.0.0.1:0", cache)
            .expect("ephemeral bind")
            .with_max_conns(0)
            .with_workers(0)
            .with_queue_limits(0, 0);
        assert_eq!(server.max_conns, 1);
        assert_eq!(server.workers, 1);
        assert_eq!(server.max_pending, 1);
        assert_eq!(server.max_outbound, 1);
    }
}

//! Reproduces the paper's **headline claims** (§1 abstract / §6
//! conclusions) as a single summary table over all four workloads:
//!
//! * client fetch reduction of 50–60 % with g5 grouping;
//! * server hit-rate gains of 20–1200 % behind small client filters;
//! * 30–60 % server hit rates behind large filters where LRU collapses.

use fgcache_bench::{emit, standard_trace};
use fgcache_sim::headline::headline_summary;
use fgcache_trace::synth::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let traces: Vec<(String, fgcache_trace::Trace)> = WorkloadProfile::ALL
        .iter()
        .map(|&p| (p.name().to_string(), standard_trace(p)))
        .collect();
    let labelled: Vec<(String, &fgcache_trace::Trace)> =
        traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    let summary = headline_summary(&labelled)?;
    emit("headline", &summary.table())?;
    Ok(())
}

//! Shared plumbing for the figure-reproduction binaries and benches.
//!
//! Every `repro_*` binary in this crate regenerates one table or figure
//! of the paper's evaluation at a standard scale, prints it as an aligned
//! table and writes a CSV under `results/`. All runs are deterministic:
//! fixed seed, fixed event counts.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `repro_fig3` | Figure 3 — client demand fetches vs capacity per group size |
//! | `repro_fig4` | Figure 4 — server hit rate vs intervening-filter capacity |
//! | `repro_fig5` | Figure 5 — P(miss future successor) vs list capacity |
//! | `repro_fig7` | Figure 7 — successor entropy vs symbol length, 4 workloads |
//! | `repro_fig8` | Figure 8 — filtered successor entropy vs symbol length |
//! | `repro_headline` | §1/§6 headline claims summary |
//! | `repro_all` | all of the above, in order |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use fgcache_sim::Table;
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;

/// Standard trace length for figure reproduction (large enough for the
/// paper-scale fetch counts, small enough to run all figures in minutes).
pub const STANDARD_EVENTS: usize = 150_000;

/// Fixed seed for all figure reproductions.
pub const STANDARD_SEED: u64 = 20020702; // ICDCS 2002, Vienna

/// Generates the standard trace for a workload profile.
///
/// # Panics
///
/// Panics if the built-in profile configuration fails validation (a bug).
pub fn standard_trace(profile: WorkloadProfile) -> Trace {
    SynthConfig::profile(profile)
        .events(STANDARD_EVENTS)
        .seed(STANDARD_SEED)
        .build()
        .expect("built-in profiles are valid")
        .generate()
}

/// Generates a reduced-scale trace (for smoke tests of the binaries).
///
/// # Panics
///
/// Panics if the built-in profile configuration fails validation (a bug).
pub fn small_trace(profile: WorkloadProfile) -> Trace {
    SynthConfig::profile(profile)
        .events(20_000)
        .seed(STANDARD_SEED)
        .build()
        .expect("built-in profiles are valid")
        .generate()
}

/// `num / den` as a float, or `0.0` when the denominator is zero.
///
/// Benchmark summaries divide by event/access counts that can be zero in
/// smoke or degenerate configurations; `0/0` would put `NaN` into the
/// printed tables and the JSON summaries (which have no way to represent
/// it), so reporting code must divide through this guard.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Prints a table to stdout and writes its CSV under `results/<name>.csv`
/// (directory created on demand). Returns the CSV path.
///
/// # Errors
///
/// Returns an error if the results directory or file cannot be written.
pub fn emit(name: &str, table: &Table) -> std::io::Result<PathBuf> {
    println!("{table}");
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    println!("[csv written to {}]\n", path.display());
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_traces_have_standard_length() {
        let t = small_trace(WorkloadProfile::Server);
        assert_eq!(t.len(), 20_000);
    }

    #[test]
    fn ratio_is_zero_not_nan_on_zero_denominator() {
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(5, 0), 0.0);
        assert!((ratio(1, 4) - 0.25).abs() < 1e-12);
        assert!(ratio(0, 0).is_finite(), "must never leak NaN into JSON");
    }

    #[test]
    fn emit_writes_csv() {
        let mut table = Table::new("t", ["a"]);
        table.push_row(["1"]);
        let path = emit("unit_test_emit", &table).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a\n"));
        std::fs::remove_file(path).ok();
    }
}

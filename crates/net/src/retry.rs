//! [`RetryingTransport`]: bounded exponential backoff over any
//! [`Transport`].
//!
//! Retries are safe because requests are idempotent by request id: every
//! attempt re-sends the *same* [`GroupRequest`], and a server that already
//! executed it re-delivers the remembered reply from its
//! [`ReplyCache`](crate::ReplyCache) instead of executing twice.
//!
//! The backoff schedule is classic bounded exponential with decorrelating
//! jitter: attempt `n` waits `base × 2ⁿ⁻¹` capped at `max`, then jittered
//! to a uniform draw from `[delay/2, delay]` using a seeded
//! [`SplitMix64`] stream — deterministic for a fixed seed, which the
//! fault-injection tests rely on. In **virtual** mode (the default) the
//! delays are only recorded; [`RetryPolicy::real_sleep`] makes the
//! wrapper actually `thread::sleep`, which is what the TCP client wants.

use std::thread;
use std::time::Duration;

use fgcache_types::rng::{RandomSource, SplitMix64};
use fgcache_types::{TransportError, TransportErrorKind};

use crate::transport::{GroupReply, GroupRequest, Transport, TransportStats};

/// Backoff schedule for a [`RetryingTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (so `1` means "never retry").
    pub max_attempts: u32,
    /// Backoff before the second attempt, in microseconds.
    pub base_delay_us: u64,
    /// Cap on any single backoff, in microseconds.
    pub max_delay_us: u64,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
    /// Whether backoff actually sleeps (`true` for real sockets) or is
    /// only recorded (`false`, for simulation and tests).
    pub real_sleep: bool,
}

impl RetryPolicy {
    /// A sensible default for loopback TCP: 4 attempts, 1ms base, 50ms
    /// cap, real sleeps.
    pub fn loopback(jitter_seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_us: 1_000,
            max_delay_us: 50_000,
            jitter_seed,
            real_sleep: true,
        }
    }

    /// A virtual-time policy for simulation and tests: delays are
    /// recorded, never slept.
    pub fn virtual_time(max_attempts: u32, jitter_seed: u64) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay_us: 1_000,
            max_delay_us: 50_000,
            jitter_seed,
            real_sleep: false,
        }
    }

    /// The unjittered backoff before attempt `attempt + 1`, in
    /// microseconds: `base × 2^(attempt−1)`, saturating, capped at
    /// [`RetryPolicy::max_delay_us`].
    pub fn raw_delay_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.base_delay_us
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_us)
    }
}

/// A [`Transport`] decorator that retries retryable failures with bounded
/// exponential backoff. See the [module docs](self).
#[derive(Debug)]
pub struct RetryingTransport<T> {
    inner: T,
    policy: RetryPolicy,
    jitter: SplitMix64,
    delays_us: Vec<u64>,
    retries: u64,
    timeouts: u64,
    duplicates_discarded: u64,
}

impl<T: Transport> RetryingTransport<T> {
    /// Wraps `inner` under `policy`. A `max_attempts` of 0 is treated
    /// as 1.
    pub fn new(inner: T, policy: RetryPolicy) -> Self {
        let jitter = SplitMix64::new(policy.jitter_seed);
        RetryingTransport {
            inner,
            policy,
            jitter,
            delays_us: Vec::new(),
            retries: 0,
            timeouts: 0,
            duplicates_discarded: 0,
        }
    }

    /// Every backoff delay taken so far, in microseconds, in order. Test
    /// hook: with a fixed [`RetryPolicy::jitter_seed`] this sequence is
    /// fully deterministic.
    pub fn delays_us(&self) -> &[u64] {
        &self.delays_us
    }

    /// Mutable access to the wrapped transport (e.g. to force faults on a
    /// [`FaultyTransport`](crate::FaultyTransport) underneath).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Draws the jittered backoff before the next attempt and records
    /// (and, in real mode, sleeps) it.
    fn back_off(&mut self, attempt: u32) {
        let raw = self.policy.raw_delay_us(attempt);
        let jittered = raw / 2 + self.jitter.gen_range_inclusive(0, raw.div_ceil(2));
        self.delays_us.push(jittered);
        if self.policy.real_sleep {
            thread::sleep(Duration::from_micros(jittered));
        }
    }
}

impl<T: Transport> RetryingTransport<T> {
    /// The shared retry loop; `owned` selects the depth-bounded
    /// [`Transport::fetch_owned`] call on the wrapped transport.
    fn fetch_with_retries(
        &mut self,
        request: &GroupRequest,
        owned: bool,
    ) -> Result<GroupReply, TransportError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut last_error: Option<TransportError> = None;
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                self.back_off(attempt - 1);
                self.retries += 1;
            }
            let outcome = if owned {
                self.inner.fetch_owned(request)
            } else {
                self.inner.fetch_group(request)
            };
            match outcome {
                Ok(reply) if reply.request_id == request.request_id => return Ok(reply),
                Ok(_stale) => {
                    // A duplicate of some earlier reply: discard and ask
                    // again under the same id.
                    self.duplicates_discarded += 1;
                    last_error = Some(
                        TransportError::new(
                            TransportErrorKind::ReplyDropped,
                            "stale duplicate reply discarded",
                        )
                        .with_request_id(request.request_id),
                    );
                }
                Err(err) if err.is_retryable() => {
                    if matches!(
                        err.kind(),
                        TransportErrorKind::Timeout | TransportErrorKind::ReplyDropped
                    ) {
                        self.timeouts += 1;
                    }
                    last_error = Some(err);
                }
                Err(err) => return Err(err.with_attempts(attempt)),
            }
        }
        let detail = match last_error {
            Some(err) => format!("retries exhausted; last failure: {err}"),
            None => "retries exhausted".to_string(),
        };
        Err(TransportError::timeout(
            request.request_id,
            max_attempts,
            detail,
        ))
    }
}

impl<T: Transport> Transport for RetryingTransport<T> {
    fn fetch_group(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        self.fetch_with_retries(request, false)
    }

    /// Retries forward the owned-fetch semantics to the wrapped
    /// transport (the default would silently downgrade to a proxyable
    /// fetch).
    fn fetch_owned(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        self.fetch_with_retries(request, true)
    }

    fn stats(&self) -> TransportStats {
        let mut stats = self.inner.stats();
        stats.retries += self.retries;
        stats.timeouts += self.timeouts;
        stats.duplicates_discarded += self.duplicates_discarded;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_core::CostModel;
    use fgcache_types::FileId;

    use crate::fault::{FaultConfig, FaultyTransport};
    use crate::sim::SimTransport;

    fn req(id: u64, files: &[u64]) -> GroupRequest {
        GroupRequest::new(id, files.iter().map(|&f| FileId(f)).collect())
    }

    fn stack(max_attempts: u32) -> RetryingTransport<FaultyTransport<SimTransport<'static>>> {
        RetryingTransport::new(
            FaultyTransport::new(
                SimTransport::to_origin(CostModel::remote()),
                FaultConfig::none(),
            ),
            RetryPolicy::virtual_time(max_attempts, 7),
        )
    }

    #[test]
    fn clean_fetch_never_backs_off() {
        let mut t = stack(4);
        let r = t.fetch_group(&req(0, &[1])).expect("no faults");
        assert_eq!(r.request_id, 0);
        assert!(t.delays_us().is_empty());
        assert_eq!(t.stats().retries, 0);
    }

    #[test]
    fn raw_delay_doubles_and_caps() {
        let p = RetryPolicy::virtual_time(8, 0);
        assert_eq!(p.raw_delay_us(1), 1_000);
        assert_eq!(p.raw_delay_us(2), 2_000);
        assert_eq!(p.raw_delay_us(3), 4_000);
        assert_eq!(p.raw_delay_us(7), 50_000, "capped at max_delay_us");
        assert_eq!(p.raw_delay_us(64), 50_000, "huge attempts saturate");
    }

    #[test]
    fn timeout_then_success_is_one_execution() {
        let mut t = stack(4);
        t.inner_mut().force_timeout_next(1);
        let r = t.fetch_group(&req(3, &[1, 2])).expect("second attempt");
        assert_eq!(r.request_id, 3);
        let s = t.stats();
        assert_eq!(s.requests, 1, "the timed-out attempt never executed");
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(t.delays_us().len(), 1);
    }

    #[test]
    fn non_retryable_error_fails_fast() {
        struct Broken;
        impl Transport for Broken {
            fn fetch_group(
                &mut self,
                request: &GroupRequest,
            ) -> Result<GroupReply, TransportError> {
                Err(
                    TransportError::new(TransportErrorKind::Protocol, "bad frame")
                        .with_request_id(request.request_id),
                )
            }
            fn stats(&self) -> TransportStats {
                TransportStats::default()
            }
        }
        let mut t = RetryingTransport::new(Broken, RetryPolicy::virtual_time(5, 0));
        let err = t.fetch_group(&req(0, &[1])).expect_err("protocol error");
        assert_eq!(err.kind(), TransportErrorKind::Protocol);
        assert_eq!(err.attempts(), 1, "no retry of non-retryable errors");
        assert!(t.delays_us().is_empty());
    }

    #[test]
    fn full_backoff_schedule_is_pinned_and_capped_after_jitter() {
        // Regression pin for the suspicion that the max-backoff cap is
        // applied before jitter (letting a jittered delay exceed the
        // cap). It cannot: jitter draws from [raw/2, raw] and raw is
        // already capped, so jittered <= raw <= max_delay_us always.
        // Pinning the whole schedule keeps that arithmetic frozen.
        let mut t = stack(9);
        t.inner_mut().force_timeout_next(8);
        t.fetch_group(&req(0, &[1])).expect("ninth attempt wins");
        let p = RetryPolicy::virtual_time(9, 7);
        assert_eq!(t.delays_us().len(), 8);
        for &d in t.delays_us() {
            assert!(d <= p.max_delay_us, "delay {d} exceeds the cap");
        }
        // Attempts 7 and 8 are at the cap pre-jitter; their jittered
        // values must still sit inside [cap/2, cap].
        assert_eq!(
            t.delays_us(),
            [779, 1451, 3515, 7131, 10770, 21812, 32336, 45768]
        );
    }

    #[test]
    fn shift_saturation_beyond_attempt_64_stays_at_cap() {
        let p = RetryPolicy::virtual_time(8, 0);
        for attempt in [64u32, 65, 100, u32::MAX] {
            assert_eq!(p.raw_delay_us(attempt), p.max_delay_us);
        }
        // Even with an enormous base the shift clamp (min 63) prevents
        // `1u64 << shift` overflow; saturating_mul + cap do the rest.
        let huge = RetryPolicy {
            base_delay_us: u64::MAX,
            ..RetryPolicy::virtual_time(8, 0)
        };
        assert_eq!(huge.raw_delay_us(u32::MAX), huge.max_delay_us);
    }

    #[test]
    fn jittered_delays_stay_in_half_open_band() {
        let mut t = stack(8);
        t.inner_mut().force_timeout_next(6);
        t.fetch_group(&req(0, &[1])).expect("seventh attempt wins");
        let p = RetryPolicy::virtual_time(8, 7);
        assert_eq!(t.delays_us().len(), 6);
        for (i, &d) in t.delays_us().iter().enumerate() {
            let raw = p.raw_delay_us(i as u32 + 1);
            assert!(
                (raw / 2..=raw).contains(&d),
                "delay {d} outside [{}, {raw}]",
                raw / 2
            );
        }
    }
}

//! `fgcache convert` — translate foreign trace logs into fgcache traces.
//!
//! Supports two source dialects:
//!
//! * `--from dfstrace` — DFSTrace-style text (`timestamp client op path`
//!   per line), the format of the paper's CMU traces;
//! * `--from strace` — `strace -f` output (`[pid N] syscall("path", …) = r`),
//!   for turning a live system call log into a workload.
//!
//! Conversion is fully streaming: events flow from the source reader
//! through the [`Remapper`](fgcache_trace::convert::Remapper) into a
//! [`TraceSink`], so arbitrarily large logs convert in O(1) memory. File
//! paths and client tokens are renumbered densely in first-seen order and
//! sequence numbers are assigned consecutively from zero, so the output
//! always satisfies the trace invariant.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, Write};

use fgcache_trace::convert::{ConvertReport, DfstraceEvents, StraceEvents};
use fgcache_trace::io::TraceIoError;
use fgcache_trace::stream::TraceSink;

use crate::args::Args;
use crate::commands::{detect_format, TraceFormat};

/// Streams every event from `events` into `sink`, flushing the buffered
/// writer so sink errors surface instead of being swallowed on drop.
fn pump<I, W>(events: &mut I, mut sink: TraceSink<BufWriter<W>>) -> Result<(), TraceIoError>
where
    I: Iterator<Item = Result<fgcache_types::AccessEvent, TraceIoError>>,
    W: Write + Seek,
{
    for ev in events {
        sink.push(&ev?)?;
    }
    sink.finish()?.flush()?;
    Ok(())
}

/// Converts `input` (in dialect `from`) to an fgcache trace at `out_path`
/// in `out_fmt`, returning the human-readable summary.
pub(crate) fn convert<R: Read>(
    input: R,
    from: &str,
    out: File,
    out_fmt: TraceFormat,
) -> Result<String, Box<dyn Error>> {
    let reader = BufReader::new(input);
    let writer = BufWriter::new(out);
    let sink = match out_fmt {
        TraceFormat::Text => TraceSink::text(writer)?,
        TraceFormat::Json => TraceSink::json(writer)?,
        TraceFormat::Binary => TraceSink::binary(writer)?,
    };
    let report: ConvertReport = match from {
        "dfstrace" => {
            let mut src = DfstraceEvents::new(reader);
            pump(&mut src, sink)?;
            src.report()
        }
        "strace" => {
            let mut src = StraceEvents::new(reader);
            pump(&mut src, sink)?;
            src.report()
        }
        other => return Err(format!("unknown --from {other:?} (dfstrace|strace)").into()),
    };
    Ok(format!("{}\n", report.summary()))
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["from", "out", "to"])?;
    let input_path = args.require_positional(0, "input")?;
    let from: String = args.require_flag("from")?;
    let out_path: String = args.require_flag("out")?;
    let out_fmt = detect_format(&out_path, args.flag("to"))?;
    let input = File::open(input_path).map_err(|e| format!("cannot open {input_path}: {e}"))?;
    let out = File::create(&out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    print!("{}", convert(input, &from, out, out_fmt)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::load_trace;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fgcache-convert-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn dfstrace_to_text_roundtrips_through_load() {
        let log = "0.1 alice open /a\n0.2 bob read /b\n0.3 alice write /a\n";
        let out_path = tmp("d.txt");
        let out = File::create(&out_path).unwrap();
        let summary = convert(log.as_bytes(), "dfstrace", out, TraceFormat::Text).unwrap();
        assert!(summary.contains("3 events"), "{summary}");
        let trace = load_trace(out_path.to_str().unwrap(), None).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.clients().len(), 2);
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn strace_to_binary_roundtrips_through_load() {
        let log = "\
[pid 10] openat(AT_FDCWD, \"/etc/passwd\", O_RDONLY) = 3\n\
[pid 10] openat(AT_FDCWD, \"/tmp/x\", O_WRONLY|O_CREAT, 0644) = 4\n\
[pid 11] unlink(\"/tmp/x\") = 0\n";
        let out_path = tmp("s.bin");
        let out = File::create(&out_path).unwrap();
        let summary = convert(log.as_bytes(), "strace", out, TraceFormat::Binary).unwrap();
        assert!(summary.contains("3 events"), "{summary}");
        let trace = load_trace(out_path.to_str().unwrap(), None).unwrap();
        assert_eq!(trace.len(), 3);
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn unknown_dialect_is_rejected() {
        let out_path = tmp("u.txt");
        let out = File::create(&out_path).unwrap();
        let err = convert(&b"x"[..], "ltrace", out, TraceFormat::Text).unwrap_err();
        assert!(err.to_string().contains("dfstrace|strace"));
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn malformed_dfstrace_reports_line_number() {
        let log = "0.1 alice open /a\nnot a line\n";
        let out_path = tmp("m.txt");
        let out = File::create(&out_path).unwrap();
        let err = convert(log.as_bytes(), "dfstrace", out, TraceFormat::Text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn missing_flags_are_reported() {
        assert!(run(&["in.log".into()]).is_err());
        assert!(run(&["in.log".into(), "--from".into(), "strace".into()]).is_err());
    }
}

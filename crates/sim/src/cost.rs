//! A simple I/O cost model for group fetching.
//!
//! The paper's motivation for grouping is latency: every remote fetch
//! pays a per-request round trip, so fetching `g` related files in one
//! request amortises it — at the price of transferring speculative files
//! that may never be used. This module quantifies that trade:
//!
//! ```text
//! total_time = demand_fetches × request_latency
//!            + files_transferred × transfer_time
//! ```
//!
//! which is the standard first-order model for fixed-size whole-file
//! transfers over a network with per-request overhead. With
//! `request_latency ≫ transfer_time` (the distributed-file-system regime
//! the paper targets), grouping wins decisively; as transfer cost grows,
//! large groups stop paying.

use fgcache_core::AggregatingCacheBuilder;
use fgcache_trace::Trace;
use fgcache_types::ValidationError;

use crate::report::{fmt2, Table};

/// Per-operation costs, in arbitrary time units (only ratios matter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost of one fetch request (round-trip latency + server
    /// request handling).
    pub request_latency: f64,
    /// Cost of transferring one file's data.
    pub transfer_time: f64,
}

impl CostModel {
    /// A distributed-file-system-like regime: a request round trip costs
    /// ten file transfers (small files, wide-area or congested links).
    pub fn remote() -> Self {
        CostModel {
            request_latency: 10.0,
            transfer_time: 1.0,
        }
    }

    /// A local-area regime: round trip worth two transfers.
    pub fn lan() -> Self {
        CostModel {
            request_latency: 2.0,
            transfer_time: 1.0,
        }
    }

    /// Validates the model (both costs finite and non-negative, not both
    /// zero).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (name, v) in [
            ("request_latency", self.request_latency),
            ("transfer_time", self.transfer_time),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ValidationError::new(name, "must be finite and >= 0"));
            }
        }
        if self.request_latency == 0.0 && self.transfer_time == 0.0 {
            return Err(ValidationError::new(
                "cost model",
                "at least one cost must be positive",
            ));
        }
        Ok(())
    }

    /// Total I/O time for a run that made `fetches` requests moving
    /// `files` files.
    pub fn total(&self, fetches: u64, files: u64) -> f64 {
        fetches as f64 * self.request_latency + files as f64 * self.transfer_time
    }
}

/// Measured I/O cost of one aggregating-cache run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Group size `g` (1 = plain LRU).
    pub group_size: usize,
    /// Demand fetches (requests issued).
    pub demand_fetches: u64,
    /// Files transferred (requested + speculative).
    pub files_transferred: u64,
    /// Total time under the cost model.
    pub total_time: f64,
}

/// Replays `trace` through aggregating caches of each group size and
/// prices the runs under `model`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if the model is invalid, `group_sizes`
/// is empty, or a group size exceeds `capacity`.
pub fn cost_sweep(
    trace: &Trace,
    capacity: usize,
    group_sizes: &[usize],
    model: CostModel,
) -> Result<Vec<CostPoint>, ValidationError> {
    model.validate()?;
    if group_sizes.is_empty() {
        return Err(ValidationError::new("group_sizes", "must not be empty"));
    }
    let mut points = Vec::with_capacity(group_sizes.len());
    for &g in group_sizes {
        let mut cache = AggregatingCacheBuilder::new(capacity)
            .group_size(g)
            .build()?;
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        let stats = cache.group_stats();
        points.push(CostPoint {
            group_size: g,
            demand_fetches: stats.demand_fetches,
            files_transferred: stats.files_transferred,
            total_time: model.total(stats.demand_fetches, stats.files_transferred),
        });
    }
    Ok(points)
}

/// Renders a cost sweep as a table, normalising times to the `g = 1` row
/// when present.
pub fn cost_table(title: &str, points: &[CostPoint]) -> Table {
    let baseline = points
        .iter()
        .find(|p| p.group_size == 1)
        .map(|p| p.total_time);
    let mut t = Table::new(
        title,
        ["group", "fetches", "files moved", "total time", "vs lru"],
    );
    for p in points {
        let rel = baseline
            .filter(|b| *b > 0.0)
            .map(|b| format!("{:+.1}%", (p.total_time / b - 1.0) * 100.0))
            .unwrap_or_default();
        t.push_row([
            if p.group_size == 1 {
                "lru".to_string()
            } else {
                format!("g{}", p.group_size)
            },
            p.demand_fetches.to_string(),
            p.files_transferred.to_string(),
            fmt2(p.total_time),
            rel,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_trace::synth::{SynthConfig, WorkloadProfile};

    fn trace() -> Trace {
        SynthConfig::profile(WorkloadProfile::Server)
            .events(20_000)
            .seed(8)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn model_validation() {
        assert!(CostModel::remote().validate().is_ok());
        assert!(CostModel {
            request_latency: -1.0,
            transfer_time: 1.0
        }
        .validate()
        .is_err());
        assert!(CostModel {
            request_latency: f64::NAN,
            transfer_time: 1.0
        }
        .validate()
        .is_err());
        assert!(CostModel {
            request_latency: 0.0,
            transfer_time: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn total_is_linear() {
        let m = CostModel {
            request_latency: 10.0,
            transfer_time: 2.0,
        };
        assert_eq!(m.total(3, 7), 44.0);
        assert_eq!(m.total(0, 0), 0.0);
    }

    #[test]
    fn sweep_validates_inputs() {
        let t = trace();
        assert!(cost_sweep(&t, 100, &[], CostModel::remote()).is_err());
        assert!(cost_sweep(&t, 4, &[9], CostModel::remote()).is_err());
        let bad = CostModel {
            request_latency: -1.0,
            transfer_time: 0.0,
        };
        assert!(cost_sweep(&t, 100, &[1], bad).is_err());
    }

    #[test]
    fn grouping_wins_when_latency_dominates() {
        let t = trace();
        let points = cost_sweep(&t, 300, &[1, 5], CostModel::remote()).unwrap();
        let lru = points.iter().find(|p| p.group_size == 1).unwrap();
        let g5 = points.iter().find(|p| p.group_size == 5).unwrap();
        assert!(
            g5.total_time < lru.total_time,
            "g5 {} vs lru {}",
            g5.total_time,
            lru.total_time
        );
        // ...even though it moves more data.
        assert!(g5.files_transferred > lru.files_transferred);
    }

    #[test]
    fn pure_bandwidth_model_penalises_grouping() {
        // With zero request latency, every speculative transfer is pure
        // overhead, so LRU must be at least as cheap.
        let t = trace();
        let model = CostModel {
            request_latency: 0.0,
            transfer_time: 1.0,
        };
        let points = cost_sweep(&t, 300, &[1, 10], model).unwrap();
        let lru = points.iter().find(|p| p.group_size == 1).unwrap();
        let g10 = points.iter().find(|p| p.group_size == 10).unwrap();
        assert!(lru.total_time <= g10.total_time);
    }

    #[test]
    fn table_renders_relative_column() {
        let t = trace();
        let points = cost_sweep(&t, 200, &[1, 5], CostModel::lan()).unwrap();
        let table = cost_table("cost", &points);
        let text = table.render();
        assert!(text.contains("vs lru"));
        assert!(text.contains('%'));
    }
}

//! Deterministic differential fuzzer for the seven replacement policies.
//!
//! Each policy is cross-validated against a trivially-correct reference
//! model: plain `Vec`s, linear searches, no slabs, no hash maps, no
//! ordered mirrors. The real implementations earn their complexity (O(1)
//! lists, BTree mirrors, ghost slabs) only if they stay bit-for-bit
//! behaviourally equal to these models over long randomized operation
//! sequences — and `check_invariants` must hold after every single step.
//!
//! Everything is seeded: a failure reproduces from the printed seed and
//! step, never from a lost RNG state.

use fgcache_cache::{Cache, FilterCache, LandlordCache, LruCache, PolicyKind};
use fgcache_types::rng::RandomSource;
use fgcache_types::sizing::{SizeCostAssigner, SizeDistribution};
use fgcache_types::{FileId, SeededRng};

const CAPACITIES: [usize; 5] = [1, 2, 5, 16, 64];
const OPS_PER_CAPACITY: usize = 2_500;
const SEED: u64 = 0xFEED_FACE;

/// Behavioural interface of a reference model.
trait Model {
    /// Returns `true` on a hit.
    fn access(&mut self, f: FileId) -> bool;
    fn insert_speculative(&mut self, f: FileId);
    fn contains(&self, f: FileId) -> bool;
    fn len(&self) -> usize;
}

// ---------------------------------------------------------------- LRU ----

/// MRU at index 0, victim at the back.
struct ModelLru {
    capacity: usize,
    order: Vec<FileId>,
}

impl Model for ModelLru {
    fn access(&mut self, f: FileId) -> bool {
        if let Some(i) = self.order.iter().position(|&x| x == f) {
            self.order.remove(i);
            self.order.insert(0, f);
            true
        } else {
            if self.order.len() == self.capacity {
                self.order.pop();
            }
            self.order.insert(0, f);
            false
        }
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.order.contains(&f) {
            return;
        }
        if self.order.len() == self.capacity {
            self.order.pop();
        }
        self.order.push(f);
    }

    fn contains(&self, f: FileId) -> bool {
        self.order.contains(&f)
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

// --------------------------------------------------------------- FIFO ----

/// Victim at index 0; hits never reorder.
struct ModelFifo {
    capacity: usize,
    queue: Vec<FileId>,
}

impl Model for ModelFifo {
    fn access(&mut self, f: FileId) -> bool {
        if self.queue.contains(&f) {
            true
        } else {
            if self.queue.len() == self.capacity {
                self.queue.remove(0);
            }
            self.queue.push(f);
            false
        }
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.queue.contains(&f) {
            return;
        }
        if self.queue.len() == self.capacity {
            self.queue.remove(0);
        }
        self.queue.insert(0, f);
    }

    fn contains(&self, f: FileId) -> bool {
        self.queue.contains(&f)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

// ---------------------------------------------------------------- LFU ----

/// Linear-scan LFU with LRU (stamp) tie-break; speculative entries carry
/// frequency 0.
struct ModelLfu {
    capacity: usize,
    clock: u64,
    entries: Vec<(FileId, u64, u64)>, // (file, freq, stamp)
}

impl ModelLfu {
    fn evict_min(&mut self) {
        if let Some(victim) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, &(f, freq, stamp))| (freq, stamp, f))
            .map(|(i, _)| i)
        {
            self.entries.remove(victim);
        }
    }
}

impl Model for ModelLfu {
    fn access(&mut self, f: FileId) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == f) {
            e.1 += 1;
            e.2 = self.clock;
            true
        } else {
            if self.entries.len() == self.capacity {
                self.evict_min();
            }
            self.entries.push((f, 1, self.clock));
            false
        }
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.entries.iter().any(|e| e.0 == f) {
            return;
        }
        self.clock += 1;
        if self.entries.len() == self.capacity {
            self.evict_min();
        }
        self.entries.push((f, 0, self.clock));
    }

    fn contains(&self, f: FileId) -> bool {
        self.entries.iter().any(|e| e.0 == f)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

// -------------------------------------------------------------- CLOCK ----

/// Circular slot vector with a sweeping hand; new entries start with a
/// cleared reference bit.
struct ModelClock {
    capacity: usize,
    slots: Vec<(FileId, bool)>,
    hand: usize,
}

impl ModelClock {
    fn place(&mut self, f: FileId) {
        if self.slots.len() < self.capacity {
            self.slots.push((f, false));
            return;
        }
        loop {
            if self.slots[self.hand].1 {
                self.slots[self.hand].1 = false;
                self.hand = (self.hand + 1) % self.slots.len();
            } else {
                self.slots[self.hand] = (f, false);
                self.hand = (self.hand + 1) % self.slots.len();
                return;
            }
        }
    }
}

impl Model for ModelClock {
    fn access(&mut self, f: FileId) -> bool {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.0 == f) {
            slot.1 = true;
            true
        } else {
            self.place(f);
            false
        }
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.slots.iter().any(|s| s.0 == f) {
            return;
        }
        self.place(f);
    }

    fn contains(&self, f: FileId) -> bool {
        self.slots.iter().any(|s| s.0 == f)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

// ----------------------------------------------------------------- 2Q ----

/// Three plain-`Vec` LRU lists (front = most recent) following Johnson &
/// Shasha's simplified 2Q with Kin = c/4 and Kout = c/2.
struct ModelTwoQ {
    capacity: usize,
    kin: usize,
    kout: usize,
    a1in: Vec<FileId>,
    am: Vec<FileId>,
    a1out: Vec<FileId>,
}

impl ModelTwoQ {
    fn new(capacity: usize) -> Self {
        ModelTwoQ {
            capacity,
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: Vec::new(),
            am: Vec::new(),
            a1out: Vec::new(),
        }
    }

    fn reclaim(&mut self) {
        let from_a1in = self.a1in.len() > self.kin || self.am.is_empty();
        if from_a1in {
            if let Some(victim) = self.a1in.pop() {
                self.a1out.insert(0, victim);
                if self.a1out.len() > self.kout {
                    self.a1out.pop();
                }
            }
        } else {
            self.am.pop();
        }
    }
}

impl Model for ModelTwoQ {
    fn access(&mut self, f: FileId) -> bool {
        if let Some(i) = self.am.iter().position(|&x| x == f) {
            self.am.remove(i);
            self.am.insert(0, f);
            return true;
        }
        if self.a1in.contains(&f) {
            return true;
        }
        if self.a1in.len() + self.am.len() >= self.capacity {
            self.reclaim();
        }
        if let Some(i) = self.a1out.iter().position(|&x| x == f) {
            self.a1out.remove(i);
            self.am.insert(0, f);
        } else {
            self.a1in.insert(0, f);
        }
        false
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.a1in.contains(&f) || self.am.contains(&f) {
            return;
        }
        if self.a1in.len() + self.am.len() >= self.capacity {
            self.reclaim();
        }
        self.a1out.retain(|&x| x != f);
        self.a1in.push(f);
    }

    fn contains(&self, f: FileId) -> bool {
        self.a1in.contains(&f) || self.am.contains(&f)
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }
}

// ----------------------------------------------------------------- MQ ----

/// Eight plain-`Vec` LRU queues plus a ghost vector, mirroring Zhou,
/// Philbin & Li's algorithm with lifeTime = max(capacity, 8).
struct ModelMq {
    capacity: usize,
    life_time: u64,
    queues: Vec<Vec<FileId>>,             // front = most recent
    meta: Vec<(FileId, u64, usize, u64)>, // (file, freq, queue, expire)
    ghost: Vec<FileId>,                   // front = most recent
    ghost_freq: Vec<(FileId, u64)>,
    now: u64,
}

impl ModelMq {
    fn new(capacity: usize) -> Self {
        ModelMq {
            capacity,
            life_time: (capacity as u64).max(8),
            queues: (0..8).map(|_| Vec::new()).collect(),
            meta: Vec::new(),
            ghost: Vec::new(),
            ghost_freq: Vec::new(),
            now: 0,
        }
    }

    fn queue_for(freq: u64) -> usize {
        if freq == 0 {
            0
        } else {
            (63 - freq.leading_zeros() as usize).min(7)
        }
    }

    fn adjust(&mut self) {
        for q in (1..8).rev() {
            let Some(&tail) = self.queues[q].last() else {
                continue;
            };
            let now = self.now;
            let life = self.life_time;
            let meta = self
                .meta
                .iter_mut()
                .find(|m| m.0 == tail)
                .expect("queued file has meta");
            if meta.3 < now {
                self.queues[q].pop();
                meta.2 = q - 1;
                meta.3 = now + life;
                self.queues[q - 1].insert(0, tail);
                return;
            }
        }
    }

    fn evict_one(&mut self) {
        for q in 0..8 {
            if let Some(victim) = self.queues[q].pop() {
                let i = self
                    .meta
                    .iter()
                    .position(|m| m.0 == victim)
                    .expect("victim has meta");
                let freq = self.meta.remove(i).1;
                self.ghost.insert(0, victim);
                self.ghost_freq.push((victim, freq));
                if self.ghost.len() > self.capacity {
                    if let Some(expired) = self.ghost.pop() {
                        self.ghost_freq.retain(|g| g.0 != expired);
                    }
                }
                return;
            }
        }
    }

    fn insert_with_freq(&mut self, f: FileId, freq: u64) {
        if self.meta.len() >= self.capacity {
            self.evict_one();
        }
        let queue = Self::queue_for(freq);
        self.queues[queue].insert(0, f);
        self.meta.push((f, freq, queue, self.now + self.life_time));
    }
}

impl Model for ModelMq {
    fn access(&mut self, f: FileId) -> bool {
        self.now += 1;
        let hit = if let Some(i) = self.meta.iter().position(|m| m.0 == f) {
            let (_, freq, queue, _) = self.meta.remove(i);
            self.queues[queue].retain(|&x| x != f);
            let freq = freq + 1;
            let queue = Self::queue_for(freq);
            self.queues[queue].insert(0, f);
            self.meta.push((f, freq, queue, self.now + self.life_time));
            true
        } else {
            let remembered = if let Some(i) = self.ghost.iter().position(|&x| x == f) {
                self.ghost.remove(i);
                let gi = self.ghost_freq.iter().position(|g| g.0 == f);
                gi.map(|i| self.ghost_freq.remove(i).1).unwrap_or(0)
            } else {
                0
            };
            self.insert_with_freq(f, remembered + 1);
            false
        };
        self.adjust();
        hit
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.meta.iter().any(|m| m.0 == f) {
            return;
        }
        if let Some(i) = self.ghost.iter().position(|&x| x == f) {
            self.ghost.remove(i);
            self.ghost_freq.retain(|g| g.0 != f);
        }
        self.insert_with_freq(f, 0);
        // Speculative entries sit at the eviction end of queue 0.
        self.queues[0].retain(|&x| x != f);
        self.queues[0].push(f);
    }

    fn contains(&self, f: FileId) -> bool {
        self.meta.iter().any(|m| m.0 == f)
    }

    fn len(&self) -> usize {
        self.meta.len()
    }
}

// ----------------------------------------------------------- Landlord ----

/// Naive Landlord (Young): a plain `Vec` in MRU→LRU order carrying
/// `(file, credit)`, with sizes and costs re-derived from the assigner
/// on every step. Victim selection and the credit tax are spelled out
/// exactly as in the paper; the real implementation must reproduce the
/// arithmetic bit-for-bit (same f64 operations per entry), so outcomes,
/// membership AND residency order must all agree.
struct ModelLandlord {
    capacity: u64,
    assigner: SizeCostAssigner,
    /// MRU at index 0; `(file, credit)`.
    entries: Vec<(FileId, f64)>,
}

impl ModelLandlord {
    fn new(capacity: usize, assigner: SizeCostAssigner) -> Self {
        ModelLandlord {
            capacity: capacity as u64,
            assigner,
            entries: Vec::new(),
        }
    }

    fn used(&self) -> u64 {
        self.entries
            .iter()
            .map(|&(f, _)| u64::from(self.assigner.size_of(f)))
            .sum()
    }

    fn make_room(&mut self, need: u64) {
        while self.used() + need > self.capacity {
            // Victim: minimum credit density, ties to the LRU end
            // (scan back-to-front, strict <).
            let mut best: Option<(usize, f64)> = None;
            for i in (0..self.entries.len()).rev() {
                let (f, credit) = self.entries[i];
                let density = credit / f64::from(self.assigner.size_of(f));
                if best.is_none_or(|(_, d)| density < d) {
                    best = Some((i, density));
                }
            }
            let Some((victim, delta)) = best else { break };
            if delta > 0.0 {
                for (f, credit) in self.entries.iter_mut() {
                    *credit = (*credit - delta * f64::from(self.assigner.size_of(*f))).max(0.0);
                }
            }
            self.entries.remove(victim);
        }
    }
}

impl Model for ModelLandlord {
    fn access(&mut self, f: FileId) -> bool {
        if let Some(i) = self.entries.iter().position(|&(x, _)| x == f) {
            self.entries.remove(i);
            self.entries
                .insert(0, (f, f64::from(self.assigner.cost_of(f))));
            true
        } else {
            let size = u64::from(self.assigner.size_of(f));
            if size <= self.capacity {
                self.make_room(size);
                self.entries
                    .insert(0, (f, f64::from(self.assigner.cost_of(f))));
            }
            false
        }
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.entries.iter().any(|&(x, _)| x == f) {
            return;
        }
        let size = u64::from(self.assigner.size_of(f));
        if size > self.capacity {
            return;
        }
        self.make_room(size);
        self.entries.push((f, 0.0));
    }

    fn contains(&self, f: FileId) -> bool {
        self.entries.iter().any(|&(x, _)| x == f)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

// ---------------------------------------------------------------- ARC ----

/// Four plain-`Vec` lists (front = most recent) following Megiddo &
/// Modha's ARC with the workspace's speculative-insert extension.
struct ModelArc {
    capacity: usize,
    p: usize,
    t1: Vec<FileId>,
    t2: Vec<FileId>,
    b1: Vec<FileId>,
    b2: Vec<FileId>,
}

fn vec_remove(v: &mut Vec<FileId>, f: FileId) -> bool {
    match v.iter().position(|&x| x == f) {
        Some(i) => {
            v.remove(i);
            true
        }
        None => false,
    }
}

impl ModelArc {
    fn new(capacity: usize) -> Self {
        ModelArc {
            capacity,
            p: 0,
            t1: Vec::new(),
            t2: Vec::new(),
            b1: Vec::new(),
            b2: Vec::new(),
        }
    }

    fn replace(&mut self, about_to_enter_from_b2: bool) {
        let t1_len = self.t1.len();
        if t1_len >= 1 && (t1_len > self.p || (about_to_enter_from_b2 && t1_len == self.p)) {
            if let Some(victim) = self.t1.pop() {
                self.b1.insert(0, victim);
            }
        } else if let Some(victim) = self.t2.pop() {
            self.b2.insert(0, victim);
        } else if let Some(victim) = self.t1.pop() {
            self.b1.insert(0, victim);
        }
    }

    fn make_room_for_new(&mut self) {
        let c = self.capacity;
        if self.t1.len() + self.b1.len() >= c {
            if self.t1.len() < c {
                self.b1.pop();
                self.replace(false);
            } else {
                self.t1.pop();
            }
        } else {
            let total = self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len();
            if total >= c {
                if total == 2 * c {
                    self.b2.pop();
                }
                if self.t1.len() + self.t2.len() >= c {
                    self.replace(false);
                }
            }
        }
    }
}

impl Model for ModelArc {
    fn access(&mut self, f: FileId) -> bool {
        if vec_remove(&mut self.t1, f) || vec_remove(&mut self.t2, f) {
            self.t2.insert(0, f);
            return true;
        }
        let c = self.capacity;
        if self.b1.contains(&f) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
            self.replace(false);
            vec_remove(&mut self.b1, f);
            self.t2.insert(0, f);
            return false;
        }
        if self.b2.contains(&f) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.replace(true);
            vec_remove(&mut self.b2, f);
            self.t2.insert(0, f);
            return false;
        }
        self.make_room_for_new();
        self.t1.insert(0, f);
        false
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.t1.contains(&f) || self.t2.contains(&f) {
            return;
        }
        vec_remove(&mut self.b1, f);
        vec_remove(&mut self.b2, f);
        self.make_room_for_new();
        self.t1.push(f);
    }

    fn contains(&self, f: FileId) -> bool {
        self.t1.contains(&f) || self.t2.contains(&f)
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }
}

// -------------------------------------------------------------- driver ----

fn model_for(kind: PolicyKind, capacity: usize) -> Box<dyn Model> {
    match kind {
        PolicyKind::Lru => Box::new(ModelLru {
            capacity,
            order: Vec::new(),
        }),
        PolicyKind::Lfu => Box::new(ModelLfu {
            capacity,
            clock: 0,
            entries: Vec::new(),
        }),
        PolicyKind::Fifo => Box::new(ModelFifo {
            capacity,
            queue: Vec::new(),
        }),
        PolicyKind::Clock => Box::new(ModelClock {
            capacity,
            slots: Vec::new(),
            hand: 0,
        }),
        PolicyKind::TwoQ => Box::new(ModelTwoQ::new(capacity)),
        PolicyKind::Mq => Box::new(ModelMq::new(capacity)),
        PolicyKind::Arc => Box::new(ModelArc::new(capacity)),
        PolicyKind::Landlord => Box::new(ModelLandlord::new(capacity, SizeCostAssigner::uniform())),
    }
}

/// Runs one policy against its model for `ops` randomized operations,
/// checking outcome equality, membership agreement on random probes, size
/// agreement and structural invariants after every step.
fn fuzz_policy(kind: PolicyKind, capacity: usize, ops: usize, seed: u64) {
    let mut rng = SeededRng::new(seed);
    let mut real = kind.build(capacity);
    let mut model = model_for(kind, capacity);
    // A universe a few times the capacity keeps both hits and evictions
    // frequent at every tested size.
    let universe = (capacity as u64) * 3 + 8;
    for step in 0..ops {
        let f = FileId(rng.gen_range_inclusive(0, universe));
        let ctx = |what: &str| {
            format!("{kind} capacity {capacity} seed {seed} step {step} file {f}: {what}")
        };
        if rng.chance(0.8) {
            let real_hit = real.access(f).is_hit();
            let model_hit = model.access(f);
            assert_eq!(real_hit, model_hit, "{}", ctx("hit/miss diverged"));
        } else {
            real.insert_speculative(f);
            model.insert_speculative(f);
        }
        assert_eq!(real.len(), model.len(), "{}", ctx("len diverged"));
        let probe = FileId(rng.gen_range_inclusive(0, universe));
        assert_eq!(
            real.contains(probe),
            model.contains(probe),
            "{}",
            ctx("membership diverged")
        );
        real.check_invariants()
            .unwrap_or_else(|v| panic!("{}", ctx(&v.to_string())));
    }
    assert!(real.stats().accesses > 0);
}

#[test]
fn lru_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::Lru, capacity, OPS_PER_CAPACITY, SEED);
    }
}

#[test]
fn lfu_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::Lfu, capacity, OPS_PER_CAPACITY, SEED);
    }
}

#[test]
fn fifo_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::Fifo, capacity, OPS_PER_CAPACITY, SEED);
    }
}

#[test]
fn clock_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::Clock, capacity, OPS_PER_CAPACITY, SEED);
    }
}

#[test]
fn twoq_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::TwoQ, capacity, OPS_PER_CAPACITY, SEED);
    }
}

#[test]
fn mq_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::Mq, capacity, OPS_PER_CAPACITY, SEED);
    }
}

#[test]
fn arc_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::Arc, capacity, OPS_PER_CAPACITY, SEED);
    }
}

#[test]
fn landlord_differential() {
    for capacity in CAPACITIES {
        fuzz_policy(PolicyKind::Landlord, capacity, OPS_PER_CAPACITY, SEED);
    }
}

/// The seed set for the sized-Landlord fuzzer: `FGCACHE_FUZZ_SEEDS`
/// (comma-separated u64s, decimal or `0x`-prefixed hex) when set — the
/// hook `xtask fuzz` and its soak mode use to widen coverage — or a
/// built-in pair otherwise.
fn fuzz_seeds() -> Vec<u64> {
    match std::env::var("FGCACHE_FUZZ_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.strip_prefix("0x")
                    .map(|hex| u64::from_str_radix(hex, 16))
                    .unwrap_or_else(|| s.parse())
                    .unwrap_or_else(|e| panic!("FGCACHE_FUZZ_SEEDS entry {s:?}: {e}"))
            })
            .collect(),
        Err(_) => vec![SEED, 0xBADC_0FFE],
    }
}

/// Landlord under seeded size/cost distributions: the real slab/list
/// implementation against the naive Vec reference, checking outcome,
/// length, membership, occupancy AND full residency order every step,
/// with `check_invariants` (credit bounds, byte accounting) after each.
fn fuzz_landlord_sized(dist: SizeDistribution, capacity: usize, ops: usize, seed: u64) {
    let assigner = SizeCostAssigner::new(dist, seed ^ 0x5EED);
    let mut rng = SeededRng::new(seed);
    let mut real = LandlordCache::with_assigner(capacity, assigner);
    let mut model = ModelLandlord::new(capacity, assigner);
    let universe = (capacity as u64) / 2 + 32;
    for step in 0..ops {
        let f = FileId(rng.gen_range_inclusive(0, universe));
        let ctx = |what: &str| {
            format!("landlord {dist} capacity {capacity} seed {seed} step {step} file {f}: {what}")
        };
        if rng.chance(0.8) {
            let real_hit = real.access(f).is_hit();
            let model_hit = model.access(f);
            assert_eq!(real_hit, model_hit, "{}", ctx("hit/miss diverged"));
        } else {
            real.insert_speculative(f);
            model.insert_speculative(f);
        }
        assert_eq!(real.len(), model.len(), "{}", ctx("len diverged"));
        assert_eq!(
            real.used_units(),
            model.used(),
            "{}",
            ctx("occupancy diverged")
        );
        let real_order: Vec<FileId> = real.residents().collect();
        let model_order: Vec<FileId> = model.entries.iter().map(|&(f, _)| f).collect();
        assert_eq!(
            real_order,
            model_order,
            "{}",
            ctx("residency order diverged")
        );
        real.check_invariants()
            .unwrap_or_else(|v| panic!("{}", ctx(&v.to_string())));
    }
}

#[test]
fn landlord_sized_differential() {
    for seed in fuzz_seeds() {
        for dist in [
            SizeDistribution::Uniform,
            SizeDistribution::Pareto,
            SizeDistribution::Bimodal,
        ] {
            for capacity in [8usize, 64, 300, 4096] {
                fuzz_landlord_sized(dist, capacity, 1_500, seed);
            }
        }
    }
}

#[test]
fn second_seed_sweep() {
    // A second, shorter sweep under a different seed for every policy.
    for kind in PolicyKind::ALL {
        for capacity in [3, 9] {
            fuzz_policy(kind, capacity, 1_000, 0xBADC_0FFE);
        }
    }
}

// ------------------------------------------------- two-level system ----

/// Cross-validates the filter → server two-level composition: a
/// `FilterCache<LruCache>` client forwarding misses to an `LruCache`
/// server, against the same composition built from reference models. The
/// *composition* is what's under test — the client's absorption decides
/// which accesses the server ever sees, so a single divergence cascades.
/// `FilterCache::check_invariants` runs after every step.
fn fuzz_two_level(client_capacity: usize, server_capacity: usize, ops: usize, seed: u64) {
    let mut rng = SeededRng::new(seed);
    let mut real_client = FilterCache::new(LruCache::new(client_capacity));
    let mut real_server = LruCache::new(server_capacity);
    let mut model_client = ModelLru {
        capacity: client_capacity,
        order: Vec::new(),
    };
    let mut model_server = ModelLru {
        capacity: server_capacity,
        order: Vec::new(),
    };
    let universe = (client_capacity.max(server_capacity) as u64) * 3 + 8;
    for step in 0..ops {
        let f = FileId(rng.gen_range_inclusive(0, universe));
        let ctx = |what: &str| {
            format!(
                "two-level client {client_capacity} server {server_capacity} \
                 seed {seed} step {step} file {f}: {what}"
            )
        };
        let real_forwarded = real_client.offer_file(f);
        let model_forwarded = !model_client.access(f);
        assert_eq!(
            model_forwarded,
            real_forwarded,
            "{}",
            ctx("client absorb/forward diverged")
        );
        if real_forwarded {
            let real_hit = real_server.access(f).is_hit();
            let model_hit = model_server.access(f);
            assert_eq!(model_hit, real_hit, "{}", ctx("server hit/miss diverged"));
        }
        let probe = FileId(rng.gen_range_inclusive(0, universe));
        assert_eq!(
            model_server.contains(probe),
            real_server.contains(probe),
            "{}",
            ctx("server membership diverged")
        );
        real_client
            .check_invariants()
            .unwrap_or_else(|v| panic!("{}", ctx(&v.to_string())));
        real_server
            .check_invariants()
            .unwrap_or_else(|v| panic!("{}", ctx(&v.to_string())));
    }
    assert_eq!(real_client.forwarded(), real_server.stats().accesses);
}

#[test]
fn two_level_differential() {
    // Client smaller, equal and larger than the server, plus degenerate
    // 1-entry tiers.
    for (client, server) in [(1, 4), (4, 16), (8, 8), (16, 4), (5, 1)] {
        fuzz_two_level(client, server, OPS_PER_CAPACITY, SEED);
        fuzz_two_level(client, server, 1_000, 0xBADC_0FFE);
    }
}

//! Fault-injection suite: seeded [`FaultyTransport`] under a
//! [`RetryingTransport`], proving the idempotency-by-request-id design
//! end to end.
//!
//! The four scenarios the issue demands:
//! (a) a dropped reply is retried and succeeds without re-executing,
//! (b) a duplicate reply is discarded by request id,
//! (c) retries are bounded and surface as a `Timeout` error,
//! (d) backoff delays are deterministic under a fixed seed.

use fgcache_core::{CostModel, ShardedAggregatingCacheBuilder};
use fgcache_net::{
    FaultConfig, FaultyTransport, GroupRequest, RetryPolicy, RetryingTransport, SimTransport,
    Transport,
};
use fgcache_types::{FileId, TransportErrorKind};

fn req(id: u64, files: &[u64]) -> GroupRequest {
    GroupRequest::new(id, files.iter().map(|&f| FileId(f)).collect())
}

type Rig<'a> = RetryingTransport<FaultyTransport<SimTransport<'a>>>;

fn rig(inner: SimTransport<'_>, max_attempts: u32) -> Rig<'_> {
    RetryingTransport::new(
        FaultyTransport::new(inner, FaultConfig::none()),
        RetryPolicy::virtual_time(max_attempts, 99),
    )
}

#[test]
fn dropped_reply_is_retried_and_succeeds_without_reexecution() {
    let cache = ShardedAggregatingCacheBuilder::new(40)
        .shards(2)
        .group_size(3)
        .build()
        .expect("valid build");
    let mut t = rig(SimTransport::to_shared(&cache, CostModel::remote()), 4);

    t.inner_mut().force_drop_next(1);
    let reply = t.fetch_group(&req(1, &[10, 11])).expect("retry succeeds");
    assert_eq!(reply.request_id, 1);
    assert_eq!(reply.files.len(), 2);

    let s = t.stats();
    assert_eq!(s.retries, 1, "exactly one retry");
    assert_eq!(
        s.requests, 1,
        "the drop happened after execution; the retry must not re-execute"
    );
    assert_eq!(s.dedup_hits, 1, "the retry was served from the reply cache");
    assert_eq!(
        cache.stats().accesses,
        2,
        "the server saw each file exactly once despite the retry"
    );
    // The re-delivered reply carries the original provenance (all misses);
    // a re-execution would have reported hits.
    assert!(reply.files.iter().all(|f| f.outcome.is_miss()));
}

#[test]
fn duplicate_reply_is_discarded_by_request_id() {
    let mut t = rig(SimTransport::to_origin(CostModel::remote()), 4);

    // Seed a "previous reply" for the duplicate fault to replay.
    t.fetch_group(&req(0, &[1])).expect("clean fetch");

    t.inner_mut().force_duplicate_next(1);
    let reply = t
        .fetch_group(&req(1, &[2]))
        .expect("retry gets the real reply");
    assert_eq!(reply.request_id, 1, "the stale reply must not leak through");

    let s = t.stats();
    assert_eq!(s.duplicates_discarded, 1);
    assert_eq!(s.retries, 1);
    assert_eq!(
        s.requests, 2,
        "both distinct requests executed exactly once"
    );
}

#[test]
fn stale_reply_after_a_later_success_is_discarded_not_resurrected() {
    // The full interleaving the issue pins: request N's reply is dropped
    // (server executed), the retry is answered from the server's reply
    // cache; N+1 then succeeds cleanly; finally the network delivers a
    // stale duplicate (N+1's reply) in place of N+2's. The client must
    // discard the stale reply by request id, retry, and get N+2's real
    // reply — without any request ever executing twice.
    let cache = ShardedAggregatingCacheBuilder::new(40)
        .shards(2)
        .group_size(3)
        .build()
        .expect("valid build");
    let mut t = rig(SimTransport::to_shared(&cache, CostModel::remote()), 4);

    t.inner_mut().force_drop_next(1);
    let n = t.fetch_group(&req(10, &[1])).expect("retry after drop");
    assert_eq!(n.request_id, 10);

    let n1 = t.fetch_group(&req(11, &[2])).expect("clean fetch");
    assert_eq!(n1.request_id, 11);

    t.inner_mut().force_duplicate_next(1);
    let n2 = t
        .fetch_group(&req(12, &[3]))
        .expect("retry after stale reply");
    assert_eq!(n2.request_id, 12, "the stale reply must not leak through");
    assert_eq!(n2.files[0].file, FileId(3));

    let s = t.stats();
    assert_eq!(s.duplicates_discarded, 1, "exactly one stale reply seen");
    assert_eq!(s.retries, 2, "one for the drop, one for the duplicate");
    // Both retries were answered from the server's reply cache: the
    // dropped reply, and N+2's real reply (the server executed it before
    // the network substituted the stale one).
    assert_eq!(s.dedup_hits, 2);
    assert_eq!(s.requests, 3, "three requests, each executed exactly once");
    assert_eq!(
        cache.stats().accesses,
        3,
        "files 1, 2, 3 once each — nothing re-executed"
    );
}

#[test]
fn retries_are_bounded_and_surface_as_timeout() {
    let max_attempts = 3;
    let mut t = rig(SimTransport::to_origin(CostModel::remote()), max_attempts);

    t.inner_mut().force_timeout_next(max_attempts);
    let err = t.fetch_group(&req(7, &[1])).expect_err("all attempts fail");
    assert_eq!(err.kind(), TransportErrorKind::Timeout);
    assert_eq!(err.request_id(), Some(7));
    assert_eq!(err.attempts(), max_attempts);

    let s = t.stats();
    assert_eq!(s.requests, 0, "no attempt ever reached the backend");
    assert_eq!(s.retries, (max_attempts - 1) as u64);
    assert_eq!(t.delays_us().len(), (max_attempts - 1) as usize);

    // The transport is not poisoned: the next fetch works.
    let reply = t.fetch_group(&req(8, &[2])).expect("recovered");
    assert_eq!(reply.request_id, 8);
}

#[test]
fn backoff_delays_are_deterministic_under_a_fixed_seed() {
    let run = |seed: u64| {
        let mut t = RetryingTransport::new(
            FaultyTransport::new(
                SimTransport::to_origin(CostModel::remote()),
                FaultConfig::none(),
            ),
            RetryPolicy {
                max_attempts: 6,
                base_delay_us: 1_000,
                max_delay_us: 50_000,
                jitter_seed: seed,
                real_sleep: false,
            },
        );
        t.inner_mut().force_timeout_next(5);
        t.fetch_group(&req(0, &[1])).expect("sixth attempt wins");
        t.delays_us().to_vec()
    };

    let first = run(1234);
    assert_eq!(first, run(1234), "same seed, same delay schedule");
    assert_ne!(first, run(4321), "different seed, different jitter");
    assert_eq!(first.len(), 5);
    // The exponential envelope is respected even through the jitter.
    for (i, &d) in first.iter().enumerate() {
        let raw = 1_000u64 << i; // 1ms, 2ms, 4ms, 8ms, 16ms — all below cap
        assert!(
            (raw / 2..=raw).contains(&d),
            "delay {i} = {d}µs escaped its band [{}, {raw}]",
            raw / 2
        );
    }
}

#[test]
fn lossy_network_end_to_end_executes_every_request_exactly_once() {
    // Statistical variant: a seeded 9%-fault network, 500 requests, and
    // the exactly-once invariant must hold bit-for-bit.
    let cache = ShardedAggregatingCacheBuilder::new(200)
        .shards(4)
        .group_size(3)
        .build()
        .expect("valid build");
    let mut t = RetryingTransport::new(
        FaultyTransport::new(
            SimTransport::to_shared(&cache, CostModel::remote()),
            FaultConfig::lossy(2002),
        ),
        RetryPolicy::virtual_time(6, 2002),
    );
    for i in 0..500u64 {
        let reply = t
            .fetch_group(&req(i, &[i % 97]))
            .expect("6 attempts beat a lossy link");
        assert_eq!(reply.request_id, i);
    }
    let s = t.stats();
    assert_eq!(s.requests, 500, "every request executed exactly once");
    assert_eq!(
        cache.stats().accesses,
        500,
        "the cache agrees: no double-counted accesses"
    );
    let faults = t.into_inner().fault_stats();
    assert!(
        faults.timeouts_injected + faults.drops_injected + faults.duplicates_injected > 0,
        "the run must actually have been faulty for this test to mean anything"
    );
}

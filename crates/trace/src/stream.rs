//! Streaming trace I/O: iterator readers and incremental sinks.
//!
//! The materialized readers in [`crate::io`] collect a whole [`Trace`]
//! into memory, which caps the workloads they can replay at the host's
//! RAM. This module provides the scale path the ROADMAP's ingestion item
//! asks for: every format gets an iterator of
//! `Result<AccessEvent, TraceIoError>` whose memory use is **bounded by a
//! constant** (one line / one record / one JSON event element plus a fixed
//! scan buffer), so a multi-GB trace replays without a `Vec<AccessEvent>`.
//!
//! Validation is *incremental*: sequence-number monotonicity
//! ([`SeqValidator`]) and id bounds are checked as each event is decoded,
//! so a violation surfaces at the offending event instead of after the
//! whole file has been buffered. The [`crate::io`] functions are thin
//! collect-adapters over these readers ([`collect_trace`]), so the two
//! paths cannot drift apart.
//!
//! Readers are **fused on error**: after yielding one `Err` they yield
//! `None` forever, so a `for` loop cannot spin on a persistently failing
//! source.
//!
//! Writing is symmetric: [`TextSink`], [`JsonSink`] and [`BinarySink`]
//! emit events one at a time and produce byte-identical output to the
//! whole-trace writers in [`crate::io`].
//!
//! ```
//! use fgcache_trace::stream::{collect_trace, TextSink, TraceReader};
//! use fgcache_trace::Trace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = Trace::from_files([1, 2, 1]);
//! let mut sink = TextSink::new(Vec::new())?;
//! for ev in t.events() {
//!     sink.push(ev)?;
//! }
//! let bytes = sink.finish()?;
//! let back = collect_trace(TraceReader::text(bytes.as_slice()))?;
//! assert_eq!(back, t);
//! # Ok(())
//! # }
//! ```

use std::io::{BufRead, BufReader, ErrorKind, Read, Seek, SeekFrom, Write};

use fgcache_types::json::{self, Json};
use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeqNo, ValidationError};

use crate::io::{
    event_from_json, event_to_json, parse_line, write_binary_record, TraceIoError, BINARY_MAGIC,
};
use crate::Trace;

/// Bytes per record of the binary format: `seq u64 + client u32 + kind u8 +
/// file u64`.
pub const BINARY_RECORD_LEN: usize = 21;

/// Bytes of the binary header: 8-byte magic plus a little-endian `u64`
/// record count.
pub const BINARY_HEADER_LEN: usize = 16;

/// Incremental check of the [`Trace`] sequence-number invariant.
///
/// Feeding events in order must produce strictly increasing sequence
/// numbers; the error message matches [`Trace::new`]'s so streaming and
/// materialized ingestion report violations identically.
#[derive(Debug, Clone, Default)]
pub struct SeqValidator {
    last: Option<SeqNo>,
}

impl SeqValidator {
    /// A validator that accepts any first event.
    pub fn new() -> Self {
        SeqValidator::default()
    }

    /// Checks `ev` against the previously accepted event.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `ev.seq` does not strictly exceed
    /// the last accepted sequence number.
    pub fn check(&mut self, ev: &AccessEvent) -> Result<(), ValidationError> {
        if let Some(last) = self.last {
            if ev.seq <= last {
                return Err(ValidationError::new(
                    "events",
                    format!(
                        "sequence numbers must be strictly increasing, found {} after {}",
                        ev.seq, last
                    ),
                ));
            }
        }
        self.last = Some(ev.seq);
        Ok(())
    }
}

/// Collects a streaming reader into an in-memory [`Trace`].
///
/// This is the adapter the materialized [`crate::io`] readers are built
/// on; call it directly to materialize any event stream (e.g. a
/// converter's output).
///
/// # Errors
///
/// Propagates the first error the stream yields.
pub fn collect_trace<I>(events: I) -> Result<Trace, TraceIoError>
where
    I: IntoIterator<Item = Result<AccessEvent, TraceIoError>>,
{
    let mut out = Vec::new();
    for ev in events {
        out.push(ev?);
    }
    Ok(Trace::new(out)?)
}

// ---------------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------------

/// Streaming reader for the line-oriented text format.
///
/// Memory use is bounded by the longest single line (the line buffer is
/// reused across iterations). Comment and blank lines are skipped but
/// still counted, so reported line numbers always match the physical
/// 1-based line of the input — including files using CRLF line endings or
/// missing the trailing newline.
#[derive(Debug)]
pub struct TextEvents<R> {
    reader: R,
    line: String,
    lineno: usize,
    validator: SeqValidator,
    done: bool,
}

impl<R: BufRead> TextEvents<R> {
    /// Wraps a buffered reader positioned at the start of the input.
    pub fn new(reader: R) -> Self {
        TextEvents {
            reader,
            line: String::new(),
            lineno: 0,
            validator: SeqValidator::new(),
            done: false,
        }
    }

    /// Physical 1-based line number of the most recently read line (0
    /// before the first read).
    pub fn line_number(&self) -> usize {
        self.lineno
    }
}

impl<R: BufRead> Iterator for TextEvents<R> {
    type Item = Result<AccessEvent, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(TraceIoError::Io(e)));
                }
            }
            self.lineno += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let parsed = parse_line(trimmed).map_err(|message| TraceIoError::Parse {
                line: self.lineno,
                message,
            });
            return Some(match parsed {
                Ok(ev) => match self.validator.check(&ev) {
                    Ok(()) => Ok(ev),
                    Err(e) => {
                        self.done = true;
                        Err(e.into())
                    }
                },
                Err(e) => {
                    self.done = true;
                    Err(e)
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Binary
// ---------------------------------------------------------------------------

/// Streaming reader for the binary format.
///
/// Reads one 21-byte record at a time — the record count in the header
/// never drives an allocation, so a corrupt header cannot cause a
/// multi-GiB `Vec::with_capacity`. When the total input length is known
/// ([`BinaryEvents::with_len`]), the header's record count is checked
/// against it *before* any record is read; either way, truncation and
/// trailing garbage surface as [`TraceIoError::Corrupt`] with the exact
/// byte offset.
#[derive(Debug)]
pub struct BinaryEvents<R> {
    reader: R,
    total_len: Option<u64>,
    remaining: u64,
    index: u64,
    offset: u64,
    started: bool,
    done: bool,
    validator: SeqValidator,
}

impl<R: Read> BinaryEvents<R> {
    /// Wraps a reader positioned at the magic bytes.
    pub fn new(reader: R) -> Self {
        Self::build(reader, None)
    }

    /// Like [`BinaryEvents::new`], but additionally validates the header's
    /// record count against the known total input size (e.g. file
    /// metadata) before reading any record.
    pub fn with_len(reader: R, total_len: u64) -> Self {
        Self::build(reader, Some(total_len))
    }

    fn build(reader: R, total_len: Option<u64>) -> Self {
        BinaryEvents {
            reader,
            total_len,
            remaining: 0,
            index: 0,
            offset: 0,
            started: false,
            done: false,
            validator: SeqValidator::new(),
        }
    }

    fn corrupt(offset: u64, message: impl Into<String>) -> TraceIoError {
        TraceIoError::Corrupt {
            offset,
            message: message.into(),
        }
    }

    fn read_header(&mut self) -> Result<(), TraceIoError> {
        let mut magic = [0u8; 8];
        self.reader.read_exact(&mut magic).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                Self::corrupt(0, "truncated header: missing 8-byte magic")
            } else {
                TraceIoError::Io(e)
            }
        })?;
        if &magic != BINARY_MAGIC {
            return Err(Self::corrupt(0, "bad magic: not an fgcache binary trace"));
        }
        let mut count_buf = [0u8; 8];
        self.reader.read_exact(&mut count_buf).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                Self::corrupt(8, "truncated header: missing record count")
            } else {
                TraceIoError::Io(e)
            }
        })?;
        let count = u64::from_le_bytes(count_buf);
        if let Some(total) = self.total_len {
            match count
                .checked_mul(BINARY_RECORD_LEN as u64)
                .and_then(|body| body.checked_add(BINARY_HEADER_LEN as u64))
            {
                Some(expected) if expected == total => {}
                Some(expected) => {
                    return Err(Self::corrupt(
                        8,
                        format!(
                            "header claims {count} records ({expected} bytes) \
                             but input is {total} bytes"
                        ),
                    ));
                }
                None => {
                    return Err(Self::corrupt(
                        8,
                        format!("header claims {count} records, larger than any real input"),
                    ));
                }
            }
        }
        self.remaining = count;
        self.offset = BINARY_HEADER_LEN as u64;
        Ok(())
    }

    fn step(&mut self) -> Result<Option<AccessEvent>, TraceIoError> {
        if !self.started {
            self.read_header()?;
            self.started = true;
        }
        if self.remaining == 0 {
            // The header's count is authoritative: probe one byte so that
            // trailing garbage after the declared records is an error even
            // when the total input size was unknown up front.
            let mut probe = [0u8; 1];
            loop {
                match self.reader.read(&mut probe) {
                    Ok(0) => return Ok(None),
                    Ok(_) => {
                        return Err(Self::corrupt(
                            self.offset,
                            format!("trailing bytes after the {} declared records", self.index),
                        ));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(TraceIoError::Io(e)),
                }
            }
        }
        let mut record = [0u8; BINARY_RECORD_LEN];
        self.reader.read_exact(&mut record).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                Self::corrupt(
                    self.offset,
                    format!(
                        "truncated record {}: need {BINARY_RECORD_LEN} bytes",
                        self.index
                    ),
                )
            } else {
                TraceIoError::Io(e)
            }
        })?;
        let seq = u64::from_le_bytes(record[0..8].try_into().expect("slice is 8 bytes"));
        let client = u32::from_le_bytes(record[8..12].try_into().expect("slice is 4 bytes"));
        let kind = AccessKind::from_code(record[12] as char)
            .map_err(|e| Self::corrupt(self.offset + 12, format!("record {}: {e}", self.index)))?;
        let file = u64::from_le_bytes(record[13..21].try_into().expect("slice is 8 bytes"));
        let ev = AccessEvent::new(SeqNo(seq), ClientId(client), FileId(file), kind);
        self.validator.check(&ev)?;
        self.offset += BINARY_RECORD_LEN as u64;
        self.index += 1;
        self.remaining -= 1;
        Ok(Some(ev))
    }
}

impl<R: Read> Iterator for BinaryEvents<R> {
    type Item = Result<AccessEvent, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.step() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Fixed chunk size of the JSON pull scanner.
const SCAN_BUF: usize = 8 * 1024;

/// A minimal buffered byte scanner for the JSON pull parser: `peek`/`bump`
/// over a fixed-size chunk buffer, tracking the absolute byte offset for
/// error messages.
#[derive(Debug)]
struct ByteScanner<R> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    offset: u64,
}

impl<R: Read> ByteScanner<R> {
    fn new(inner: R) -> Self {
        ByteScanner {
            inner,
            buf: Vec::new(),
            pos: 0,
            offset: 0,
        }
    }

    /// Ensures at least one unread byte is buffered; false at EOF.
    fn fill(&mut self) -> Result<bool, TraceIoError> {
        if self.pos < self.buf.len() {
            return Ok(true);
        }
        self.pos = 0;
        self.buf.resize(SCAN_BUF, 0);
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    self.buf.clear();
                    return Ok(false);
                }
                Ok(n) => {
                    self.buf.truncate(n);
                    return Ok(true);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.buf.clear();
                    return Err(TraceIoError::Io(e));
                }
            }
        }
    }

    fn peek(&mut self) -> Result<Option<u8>, TraceIoError> {
        if self.fill()? {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    fn bump(&mut self) -> Result<Option<u8>, TraceIoError> {
        if self.fill()? {
            let b = self.buf[self.pos];
            self.pos += 1;
            self.offset += 1;
            Ok(Some(b))
        } else {
            Ok(None)
        }
    }

    fn skip_ws(&mut self) -> Result<(), TraceIoError> {
        while let Some(b) = self.peek()? {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.bump()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Error message in the same shape as
    /// [`fgcache_types::json::JsonParseError`]'s display.
    fn err_at(offset: u64, message: impl Into<String>) -> TraceIoError {
        TraceIoError::Json(format!("invalid JSON at byte {offset}: {}", message.into()))
    }

    fn err_here(&self, message: impl Into<String>) -> TraceIoError {
        Self::err_at(self.offset, message)
    }

    fn expect(&mut self, want: u8) -> Result<(), TraceIoError> {
        match self.bump()? {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(Self::err_at(
                self.offset - 1,
                format!("expected {:?}, found {:?}", want as char, b as char),
            )),
            None => Err(self.err_here(format!("expected {:?}, found end of input", want as char))),
        }
    }

    /// Consumes one byte; appends it to `out` when capturing.
    fn take(&mut self, out: &mut Vec<u8>, capture: bool) -> Result<(), TraceIoError> {
        if let Some(b) = self.bump()? {
            if capture {
                out.push(b);
            }
        }
        Ok(())
    }

    /// Consumes a JSON string (the caller has peeked the opening quote),
    /// escape-aware but without decoding.
    fn consume_string(&mut self, out: &mut Vec<u8>, capture: bool) -> Result<(), TraceIoError> {
        self.take(out, capture)?; // opening quote
        loop {
            let Some(b) = self.bump()? else {
                return Err(self.err_here("unterminated string"));
            };
            if capture {
                out.push(b);
            }
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    let Some(esc) = self.bump()? else {
                        return Err(self.err_here("unterminated string escape"));
                    };
                    if capture {
                        out.push(esc);
                    }
                }
                _ => {}
            }
        }
    }

    /// Consumes one JSON value *structurally*: strings are escape-aware,
    /// containers are balanced (up to [`json::MAX_DEPTH`]), scalars run to
    /// the next delimiter. With `capture`, the raw bytes land in `out` for
    /// a precise re-parse by [`Json::parse`]; without, nothing is buffered
    /// (skipped foreign values cost zero memory).
    fn consume_value(&mut self, out: &mut Vec<u8>, capture: bool) -> Result<(), TraceIoError> {
        self.skip_ws()?;
        let Some(first) = self.peek()? else {
            return Err(self.err_here("expected a value, found end of input"));
        };
        match first {
            b'"' => self.consume_string(out, capture),
            b'{' | b'[' => {
                let mut depth = 0usize;
                loop {
                    let Some(b) = self.peek()? else {
                        return Err(self.err_here("unterminated container"));
                    };
                    match b {
                        b'"' => self.consume_string(out, capture)?,
                        b'{' | b'[' => {
                            depth += 1;
                            if depth > json::MAX_DEPTH {
                                return Err(self.err_here(format!(
                                    "nesting deeper than {} levels",
                                    json::MAX_DEPTH
                                )));
                            }
                            self.take(out, capture)?;
                        }
                        b'}' | b']' => {
                            self.take(out, capture)?;
                            depth -= 1;
                            if depth == 0 {
                                return Ok(());
                            }
                        }
                        _ => self.take(out, capture)?,
                    }
                }
            }
            _ => {
                // Bare scalar: number / true / false / null.
                while let Some(b) = self.peek()? {
                    if matches!(b, b',' | b'}' | b']') || b.is_ascii_whitespace() {
                        break;
                    }
                    self.take(out, capture)?;
                }
                Ok(())
            }
        }
    }

    /// Reads an object key into `scratch` (raw, quotes included) and
    /// reports whether it is the literal key `"events"`.
    fn read_key(&mut self, scratch: &mut Vec<u8>) -> Result<bool, TraceIoError> {
        self.skip_ws()?;
        match self.peek()? {
            Some(b'"') => {}
            Some(b) => {
                return Err(self.err_here(format!("expected an object key, found {:?}", b as char)))
            }
            None => return Err(self.err_here("expected an object key, found end of input")),
        }
        scratch.clear();
        self.consume_string(scratch, true)?;
        Ok(scratch.as_slice() == b"\"events\"")
    }
}

/// Streaming reader for the JSON format written by
/// [`crate::io::write_json`].
///
/// The document is scanned as a byte stream: only one event element is
/// buffered at a time (plus a fixed chunk buffer), so arbitrarily long
/// `"events"` arrays parse in constant memory. Each element is re-parsed
/// with the strict [`Json`] parser, so per-event validation is identical
/// to the materialized reader. Keys other than `"events"` are skipped
/// structurally without buffering; the top-level key must be spelled
/// literally `"events"` (escaped spellings are not recognised). Truncated
/// documents and trailing garbage after the closing `}` are errors.
#[derive(Debug)]
pub struct JsonEvents<R> {
    scanner: ByteScanner<R>,
    scratch: Vec<u8>,
    index: usize,
    validator: SeqValidator,
    started: bool,
    first: bool,
    done: bool,
}

impl<R: Read> JsonEvents<R> {
    /// Wraps a reader positioned at the start of the JSON document.
    pub fn new(reader: R) -> Self {
        JsonEvents {
            scanner: ByteScanner::new(reader),
            scratch: Vec::new(),
            index: 0,
            validator: SeqValidator::new(),
            started: false,
            first: true,
            done: false,
        }
    }

    /// Parses the document prologue up to and including the `[` of the
    /// `"events"` array, skipping any earlier foreign keys.
    fn open_events_array(&mut self) -> Result<(), TraceIoError> {
        self.scanner.skip_ws()?;
        self.scanner.expect(b'{')?;
        loop {
            self.scanner.skip_ws()?;
            if self.scanner.peek()? == Some(b'}') {
                return Err(TraceIoError::Json("missing \"events\" array".to_string()));
            }
            let is_events = self.scanner.read_key(&mut self.scratch)?;
            self.scanner.skip_ws()?;
            self.scanner.expect(b':')?;
            if is_events {
                self.scanner.skip_ws()?;
                self.scanner.expect(b'[')?;
                return Ok(());
            }
            self.scratch.clear();
            self.scanner.consume_value(&mut self.scratch, false)?;
            self.scanner.skip_ws()?;
            match self.scanner.peek()? {
                Some(b',') => {
                    self.scanner.bump()?;
                }
                Some(b'}') => {
                    return Err(TraceIoError::Json("missing \"events\" array".to_string()));
                }
                Some(b) => {
                    return Err(self.scanner.err_here(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        b as char
                    )))
                }
                None => return Err(self.scanner.err_here("unterminated object")),
            }
        }
    }

    /// Parses everything after the events array's `]`: remaining foreign
    /// keys, the closing `}`, and end of input (garbage suffixes error).
    fn close_document(&mut self) -> Result<(), TraceIoError> {
        loop {
            self.scanner.skip_ws()?;
            match self.scanner.bump()? {
                Some(b',') => {
                    let _ = self.scanner.read_key(&mut self.scratch)?;
                    self.scanner.skip_ws()?;
                    self.scanner.expect(b':')?;
                    self.scratch.clear();
                    self.scanner.consume_value(&mut self.scratch, false)?;
                }
                Some(b'}') => break,
                Some(b) => {
                    return Err(ByteScanner::<R>::err_at(
                        self.scanner.offset - 1,
                        format!(
                            "expected ',' or '}}' after events array, found {:?}",
                            b as char
                        ),
                    ))
                }
                None => return Err(self.scanner.err_here("unterminated document")),
            }
        }
        self.scanner.skip_ws()?;
        if self.scanner.peek()?.is_some() {
            return Err(self.scanner.err_here("trailing characters after document"));
        }
        Ok(())
    }

    fn advance(&mut self) -> Result<Option<AccessEvent>, TraceIoError> {
        if !self.started {
            self.open_events_array()?;
            self.started = true;
        }
        self.scanner.skip_ws()?;
        if self.first {
            if self.scanner.peek()? == Some(b']') {
                self.scanner.bump()?;
                self.close_document()?;
                return Ok(None);
            }
        } else {
            match self.scanner.bump()? {
                Some(b',') => {}
                Some(b']') => {
                    self.close_document()?;
                    return Ok(None);
                }
                Some(b) => {
                    return Err(ByteScanner::<R>::err_at(
                        self.scanner.offset - 1,
                        format!("expected ',' or ']' in events array, found {:?}", b as char),
                    ))
                }
                None => return Err(self.scanner.err_here("unterminated events array")),
            }
        }
        self.scratch.clear();
        self.scanner.consume_value(&mut self.scratch, true)?;
        let text = std::str::from_utf8(&self.scratch)
            .map_err(|_| TraceIoError::Json(format!("event {}: invalid UTF-8", self.index)))?;
        let value = Json::parse(text)
            .map_err(|e| TraceIoError::Json(format!("event {}: {e}", self.index)))?;
        let ev = event_from_json(self.index, &value)?;
        self.validator.check(&ev)?;
        self.index += 1;
        self.first = false;
        Ok(Some(ev))
    }
}

impl<R: Read> Iterator for JsonEvents<R> {
    type Item = Result<AccessEvent, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.advance() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Format dispatch
// ---------------------------------------------------------------------------

/// A streaming trace reader over any of the three on-disk formats.
///
/// One enum so callers (the CLI, the sim drivers) can hold "some trace
/// stream" without a generic parameter per format.
#[derive(Debug)]
pub enum TraceReader<R: Read> {
    /// Line-oriented text format.
    Text(TextEvents<BufReader<R>>),
    /// JSON `{"events":[…]}` format.
    Json(JsonEvents<R>),
    /// Fixed-width binary format.
    Binary(BinaryEvents<BufReader<R>>),
}

impl<R: Read> TraceReader<R> {
    /// Streams the text format.
    pub fn text(reader: R) -> Self {
        TraceReader::Text(TextEvents::new(BufReader::new(reader)))
    }

    /// Streams the JSON format.
    pub fn json(reader: R) -> Self {
        TraceReader::Json(JsonEvents::new(reader))
    }

    /// Streams the binary format.
    pub fn binary(reader: R) -> Self {
        TraceReader::Binary(BinaryEvents::new(BufReader::new(reader)))
    }

    /// Streams the binary format, validating the header's record count
    /// against the known total input size before reading any record.
    pub fn binary_with_len(reader: R, total_len: u64) -> Self {
        TraceReader::Binary(BinaryEvents::with_len(BufReader::new(reader), total_len))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<AccessEvent, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            TraceReader::Text(r) => r.next(),
            TraceReader::Json(r) => r.next(),
            TraceReader::Binary(r) => r.next(),
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Incremental writer of the text format; byte-identical to
/// [`crate::io::write_text`] over the same events.
#[derive(Debug)]
pub struct TextSink<W: Write> {
    w: W,
    validator: SeqValidator,
}

impl<W: Write> TextSink<W> {
    /// Writes the header comment and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn new(mut w: W) -> Result<Self, TraceIoError> {
        writeln!(w, "# fgcache trace v1: seq client kind file")?;
        Ok(TextSink {
            w,
            validator: SeqValidator::new(),
        })
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Validation`] if `ev` breaks sequence-number
    /// monotonicity, or [`TraceIoError::Io`] on writer failure.
    pub fn push(&mut self, ev: &AccessEvent) -> Result<(), TraceIoError> {
        self.validator.check(ev)?;
        writeln!(
            self.w,
            "{} {} {} {}",
            ev.seq.as_u64(),
            ev.client.as_u32(),
            ev.kind.code(),
            ev.file.as_u64()
        )?;
        Ok(())
    }

    /// Flushes and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on flush failure.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Incremental writer of the JSON format; byte-identical to
/// [`crate::io::write_json`] over the same events.
#[derive(Debug)]
pub struct JsonSink<W: Write> {
    w: W,
    buf: String,
    count: u64,
    validator: SeqValidator,
}

impl<W: Write> JsonSink<W> {
    /// Writes the document prologue and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn new(mut w: W) -> Result<Self, TraceIoError> {
        w.write_all(b"{\"events\":[")?;
        Ok(JsonSink {
            w,
            buf: String::new(),
            count: 0,
            validator: SeqValidator::new(),
        })
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Validation`] if `ev` breaks sequence-number
    /// monotonicity, or [`TraceIoError::Io`] on writer failure.
    pub fn push(&mut self, ev: &AccessEvent) -> Result<(), TraceIoError> {
        self.validator.check(ev)?;
        self.buf.clear();
        if self.count > 0 {
            self.buf.push(',');
        }
        event_to_json(ev).write(&mut self.buf);
        self.w.write_all(self.buf.as_bytes())?;
        self.count += 1;
        Ok(())
    }

    /// Writes the document epilogue, flushes, and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.w.write_all(b"]}")?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Incremental writer of the binary format; byte-identical to
/// [`crate::io::write_binary`] over the same events.
///
/// The record count is not known up front, so a zero placeholder is
/// written first and patched on [`BinarySink::finish`] — hence the `Seek`
/// bound (files and `io::Cursor` both qualify).
#[derive(Debug)]
pub struct BinarySink<W: Write + Seek> {
    w: W,
    count: u64,
    validator: SeqValidator,
}

impl<W: Write + Seek> BinarySink<W> {
    /// Writes the magic and a placeholder count, returning the sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn new(mut w: W) -> Result<Self, TraceIoError> {
        w.write_all(BINARY_MAGIC)?;
        w.write_all(&0u64.to_le_bytes())?;
        Ok(BinarySink {
            w,
            count: 0,
            validator: SeqValidator::new(),
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Validation`] if `ev` breaks sequence-number
    /// monotonicity, or [`TraceIoError::Io`] on writer failure.
    pub fn push(&mut self, ev: &AccessEvent) -> Result<(), TraceIoError> {
        self.validator.check(ev)?;
        write_binary_record(&mut self.w, ev)?;
        self.count += 1;
        Ok(())
    }

    /// Patches the record count into the header, flushes, and returns the
    /// writer (positioned at the end).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.w.seek(SeekFrom::Start(8))?;
        self.w.write_all(&self.count.to_le_bytes())?;
        self.w.seek(SeekFrom::End(0))?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// An incremental sink over any of the three formats — the writing twin
/// of [`TraceReader`], used by `fgcache convert` to pick the output
/// format at runtime.
#[derive(Debug)]
pub enum TraceSink<W: Write + Seek> {
    /// Line-oriented text format.
    Text(TextSink<W>),
    /// JSON `{"events":[…]}` format.
    Json(JsonSink<W>),
    /// Fixed-width binary format.
    Binary(BinarySink<W>),
}

impl<W: Write + Seek> TraceSink<W> {
    /// Text-format sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn text(w: W) -> Result<Self, TraceIoError> {
        Ok(TraceSink::Text(TextSink::new(w)?))
    }

    /// JSON-format sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn json(w: W) -> Result<Self, TraceIoError> {
        Ok(TraceSink::Json(JsonSink::new(w)?))
    }

    /// Binary-format sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn binary(w: W) -> Result<Self, TraceIoError> {
        Ok(TraceSink::Binary(BinarySink::new(w)?))
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Validation`] on a sequence-number
    /// violation, or [`TraceIoError::Io`] on writer failure.
    pub fn push(&mut self, ev: &AccessEvent) -> Result<(), TraceIoError> {
        match self {
            TraceSink::Text(s) => s.push(ev),
            TraceSink::Json(s) => s.push(ev),
            TraceSink::Binary(s) => s.push(ev),
        }
    }

    /// Completes the output and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on writer failure.
    pub fn finish(self) -> Result<W, TraceIoError> {
        match self {
            TraceSink::Text(s) => s.finish(),
            TraceSink::Json(s) => s.finish(),
            TraceSink::Binary(s) => s.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io;
    use std::io::Cursor;

    fn sample() -> Trace {
        Trace::new(vec![
            AccessEvent::new(SeqNo(0), ClientId(3), FileId(7), AccessKind::Read),
            AccessEvent::new(SeqNo(1), ClientId(0), FileId(u64::MAX), AccessKind::Create),
            AccessEvent::new(SeqNo(9), ClientId(u32::MAX), FileId(0), AccessKind::Delete),
            AccessEvent::new(SeqNo(10), ClientId(1), FileId(4), AccessKind::Write),
        ])
        .expect("strictly increasing")
    }

    #[test]
    fn seq_validator_matches_trace_new_semantics() {
        let mut v = SeqValidator::new();
        v.check(&AccessEvent::read(0, 1)).unwrap();
        v.check(&AccessEvent::read(5, 2)).unwrap();
        let err = v.check(&AccessEvent::read(5, 3)).unwrap_err();
        assert!(err.to_string().contains("strictly increasing"));
        assert!(v.check(&AccessEvent::read(4, 3)).is_err());
    }

    #[test]
    fn text_stream_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        io::write_text(&t, &mut buf).unwrap();
        let back = collect_trace(TraceReader::text(buf.as_slice())).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_stream_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        io::write_json(&t, &mut buf).unwrap();
        let back = collect_trace(TraceReader::json(buf.as_slice())).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_stream_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        io::write_binary(&t, &mut buf).unwrap();
        let len = buf.len() as u64;
        let back = collect_trace(TraceReader::binary_with_len(buf.as_slice(), len)).unwrap();
        assert_eq!(back, t);
        let back = collect_trace(TraceReader::binary(buf.as_slice())).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_reports_physical_line_numbers_through_noise() {
        // Comments and blank lines before the bad line must not desync
        // the reported line number: the bad line is physically line 5.
        let input = "# header\n\n0 0 R 1\n\n1 0 Q 2\n";
        let mut r = TextEvents::new(BufReader::new(input.as_bytes()));
        assert!(r.next().unwrap().is_ok());
        let err = r.next().unwrap().unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(r.next().is_none(), "reader fuses after an error");
    }

    #[test]
    fn text_handles_crlf_and_missing_trailing_newline() {
        let input = "0 0 R 1\r\n1 0 W 2"; // CRLF + no final newline
        let t = collect_trace(TraceReader::text(input.as_bytes())).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1].kind, AccessKind::Write);
    }

    #[test]
    fn text_stream_rejects_out_of_order_incrementally() {
        let input = "5 0 R 1\n3 0 R 2\n9 0 R 3\n";
        let mut r = TextEvents::new(BufReader::new(input.as_bytes()));
        assert!(r.next().unwrap().is_ok());
        assert!(matches!(
            r.next().unwrap().unwrap_err(),
            TraceIoError::Validation(_)
        ));
        assert!(r.next().is_none());
    }

    #[test]
    fn binary_header_length_mismatch_is_rejected_before_reading_records() {
        let t = Trace::from_files([1, 2, 3]);
        let mut buf = Vec::new();
        io::write_binary(&t, &mut buf).unwrap();
        // Forge the count to a huge value; with the real input length the
        // header is rejected immediately.
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let len = buf.len() as u64;
        let err = collect_trace(TraceReader::binary_with_len(buf.as_slice(), len)).unwrap_err();
        match err {
            TraceIoError::Corrupt {
                offset,
                ref message,
            } => {
                assert_eq!(offset, 8);
                assert!(message.contains("records"), "{message}");
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
    }

    #[test]
    fn binary_truncation_mid_record_reports_byte_offset() {
        let t = Trace::from_files([1, 2, 3]);
        let mut buf = Vec::new();
        io::write_binary(&t, &mut buf).unwrap();
        buf.truncate(16 + 21 + 5); // header + record 0 + 5 bytes of record 1
        let mut r = BinaryEvents::new(buf.as_slice());
        assert!(r.next().unwrap().is_ok());
        let err = r.next().unwrap().unwrap_err();
        match err {
            TraceIoError::Corrupt {
                offset,
                ref message,
            } => {
                assert_eq!(offset, 16 + 21);
                assert!(message.contains("truncated record 1"), "{message}");
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        assert!(r.next().is_none());
    }

    #[test]
    fn binary_trailing_bytes_are_rejected() {
        let t = Trace::from_files([1, 2]);
        let mut buf = Vec::new();
        io::write_binary(&t, &mut buf).unwrap();
        buf.push(0xAB);
        let err = collect_trace(TraceReader::binary(buf.as_slice())).unwrap_err();
        assert!(matches!(err, TraceIoError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn json_stream_rejects_truncation_and_garbage_suffix() {
        let t = Trace::from_files([1, 2, 3]);
        let mut buf = Vec::new();
        io::write_json(&t, &mut buf).unwrap();
        // Truncate inside the events array.
        let cut = buf.len() - 10;
        let err = collect_trace(TraceReader::json(&buf[..cut])).unwrap_err();
        assert!(matches!(err, TraceIoError::Json(_)), "{err:?}");
        // Garbage after the closing brace.
        let mut noisy = buf.clone();
        noisy.extend_from_slice(b" xyz");
        let err = collect_trace(TraceReader::json(noisy.as_slice())).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn json_stream_skips_foreign_keys_without_buffering_them() {
        let doc = br#"{"meta":{"tool":"x","n":[1,[2,3]]},"events":[{"seq":0,"client":1,"file":9,"kind":"Read"}],"after":"ok"}"#;
        let t = collect_trace(TraceReader::json(&doc[..])).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].file, FileId(9));
        assert_eq!(t.events()[0].client, ClientId(1));
    }

    #[test]
    fn json_stream_requires_events_key() {
        let err = collect_trace(TraceReader::json(&br#"{"other":1}"#[..])).unwrap_err();
        assert!(err.to_string().contains("events"), "{err}");
        let err = collect_trace(TraceReader::json(&b"{}"[..])).unwrap_err();
        assert!(err.to_string().contains("events"), "{err}");
    }

    #[test]
    fn json_stream_depth_limit_holds() {
        let mut doc = b"{\"pad\":".to_vec();
        doc.extend(std::iter::repeat_n(b'[', 100_000));
        let err = collect_trace(TraceReader::json(doc.as_slice())).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn sinks_match_materialized_writers_byte_for_byte() {
        let t = sample();
        let mut text_whole = Vec::new();
        io::write_text(&t, &mut text_whole).unwrap();
        let mut json_whole = Vec::new();
        io::write_json(&t, &mut json_whole).unwrap();
        let mut bin_whole = Vec::new();
        io::write_binary(&t, &mut bin_whole).unwrap();

        let mut text_sink = TextSink::new(Vec::new()).unwrap();
        let mut json_sink = JsonSink::new(Vec::new()).unwrap();
        let mut bin_sink = BinarySink::new(Cursor::new(Vec::new())).unwrap();
        for ev in t.events() {
            text_sink.push(ev).unwrap();
            json_sink.push(ev).unwrap();
            bin_sink.push(ev).unwrap();
        }
        assert_eq!(text_sink.finish().unwrap(), text_whole);
        assert_eq!(json_sink.finish().unwrap(), json_whole);
        assert_eq!(bin_sink.finish().unwrap().into_inner(), bin_whole);
    }

    #[test]
    fn empty_trace_through_sinks_and_streams() {
        let json = JsonSink::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(json, b"{\"events\":[]}");
        assert!(collect_trace(TraceReader::json(json.as_slice()))
            .unwrap()
            .is_empty());
        let bin = BinarySink::new(Cursor::new(Vec::new()))
            .unwrap()
            .finish()
            .unwrap()
            .into_inner();
        assert!(collect_trace(TraceReader::binary(bin.as_slice()))
            .unwrap()
            .is_empty());
        let text = TextSink::new(Vec::new()).unwrap().finish().unwrap();
        assert!(collect_trace(TraceReader::text(text.as_slice()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sink_rejects_non_monotone_seq() {
        let mut sink = TextSink::new(Vec::new()).unwrap();
        sink.push(&AccessEvent::read(4, 1)).unwrap();
        assert!(matches!(
            sink.push(&AccessEvent::read(4, 2)).unwrap_err(),
            TraceIoError::Validation(_)
        ));
    }

    #[test]
    fn trace_sink_dispatch_roundtrips() {
        let t = sample();
        for make in [TraceSink::text, TraceSink::json, TraceSink::binary] {
            let mut sink = make(Cursor::new(Vec::new())).unwrap();
            for ev in t.events() {
                sink.push(ev).unwrap();
            }
            let bytes = sink.finish().unwrap().into_inner();
            // Detect format by first byte: '#' text, '{' json, 'F' binary.
            let back = match bytes[0] {
                b'#' => collect_trace(TraceReader::text(bytes.as_slice())),
                b'{' => collect_trace(TraceReader::json(bytes.as_slice())),
                _ => collect_trace(TraceReader::binary(bytes.as_slice())),
            }
            .unwrap();
            assert_eq!(back, t);
        }
    }
}

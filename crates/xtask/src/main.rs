//! `xtask` — the workspace's static-analysis gate.
//!
//! ```text
//! cargo run -p xtask -- lint        # pure static checks, no cargo subprocesses
//! cargo run -p xtask -- fuzz        # differential fuzzers over the pinned seed set
//! cargo run -p xtask -- bench-smoke # hot-path bench, small event count → BENCH_hot_path.json
//! cargo run -p xtask -- ci          # fmt, clippy, lint, build, test, smoke, bench-smoke, fuzz
//! ```
//!
//! `lint` enforces the hermetic-build policy without compiling anything:
//!
//! 1. **Dependency allowlist** — every `[dependencies]`,
//!    `[dev-dependencies]` and `[build-dependencies]` entry in every
//!    workspace manifest must name another workspace crate. Any external
//!    crate fails the gate; the workspace builds from `std` alone.
//! 2. **Crate attributes** — every crate root carries
//!    `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! 3. **Panic-free library code** — no `.unwrap()`, `todo!()` or
//!    `unimplemented!()` outside `#[cfg(test)]` modules in any `src/`
//!    file (`.expect("why")` is allowed: it documents the invariant).
//! 4. **Mutex lock discipline** — no `.lock().unwrap()` chain (even
//!    split across lines) outside `#[cfg(test)]`; a poisoned-mutex
//!    bailout must say what was poisoned via `.expect("...")`.
//! 5. **Socket confinement** — `std::net` appears only in `fgcache-net`.
//!    Every other crate goes through the `Transport` trait, so simulations
//!    stay deterministic and the wire protocol has one implementation.
//!
//! `fuzz` runs the differential fuzzers — the sharded-composition suite
//! and the policy/two-level suite — over a bounded deterministic seed
//! set (exported as `FGCACHE_FUZZ_SEEDS`), so CI exercises more seeds
//! than the in-repo defaults without ever becoming flaky.
//!
//! `bench-smoke` runs the hot-path microbenchmark for a fixed small event
//! count and writes `BENCH_hot_path.json` (events/sec, allocs/event,
//! locks/event per scenario) at the workspace root. It is a run-only
//! gate: the numbers are recorded so the perf trajectory accumulates,
//! but no thresholds are enforced — the CI host is a single core, where
//! wall-clock cannot show contention wins (locks/event can).
//!
//! The lint checks are deliberately line-based and dependency-free: the
//! gate itself must not need anything the gate forbids.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// One gate violation: where it is and what rule it breaks.
#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: Option<usize>,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "{}:{}: {}", self.file.display(), n, self.message),
            None => write!(f, "{}: {}", self.file.display(), self.message),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&root),
        Some("fuzz") => fuzz(&root),
        Some("bench-smoke") => bench_smoke(&root),
        Some("ci") => ci(&root),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint|fuzz|bench-smoke|ci>");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: the manifest dir's grandparent (`crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Runs all static checks; prints violations and returns the exit code.
fn lint(root: &Path) -> ExitCode {
    let members = workspace_members(root);
    let allowed: Vec<String> = members.iter().map(|m| m.name.clone()).collect();

    let mut violations = Vec::new();
    check_dependency_allowlist(root, &members, &allowed, &mut violations);
    check_crate_attributes(&members, &mut violations);
    check_panic_free_sources(&members, &mut violations);
    check_lock_discipline(&members, &mut violations);
    check_socket_confinement(&members, &mut violations);

    if violations.is_empty() {
        println!(
            "xtask lint: {} crates clean (allowlist, attributes, panic-free sources, \
             lock discipline, socket confinement)",
            members.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The bounded deterministic seed set the differential fuzzers run under
/// in CI — a superset of the suites' built-in defaults. Growing this list
/// grows coverage linearly and deterministically; no seed here ever makes
/// the gate flaky.
const FUZZ_SEEDS: &str = "0xfeedface,0xbadc0ffe,1,42,20020702";

/// Runs the differential fuzzers over [`FUZZ_SEEDS`]: the sharded
/// aggregating-cache composition suite and the trace malformed-input
/// suite (both read `FGCACHE_FUZZ_SEEDS`), plus the policy + two-level
/// suite (fixed internal seeds).
fn fuzz(root: &Path) -> ExitCode {
    let suites: [(&str, &[&str]); 3] = [
        (
            "sharded composition fuzzer",
            &[
                "test",
                "-q",
                "-p",
                "fgcache-core",
                "--test",
                "sharded_differential",
            ],
        ),
        (
            "policy + two-level fuzzer",
            &[
                "test",
                "-q",
                "-p",
                "fgcache-cache",
                "--test",
                "differential",
            ],
        ),
        (
            "trace malformed-input fuzzer",
            &["test", "-q", "-p", "fgcache-trace", "--test", "malformed"],
        ),
    ];
    for (label, cargo_args) in suites {
        println!("==> fuzz: {label} (FGCACHE_FUZZ_SEEDS={FUZZ_SEEDS})");
        let ok = Command::new("cargo")
            .args(cargo_args)
            .env("FGCACHE_FUZZ_SEEDS", FUZZ_SEEDS)
            .current_dir(root)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !ok {
            eprintln!("xtask fuzz: suite failed: {label}");
            return ExitCode::FAILURE;
        }
    }
    println!("xtask fuzz: all suites passed");
    ExitCode::SUCCESS
}

/// Runs the hot-path microbenchmark in smoke mode (small fixed event
/// count) and writes `BENCH_hot_path.json` at the workspace root. Run-only
/// gate: it fails only if the bench itself fails, never on the numbers —
/// thresholds would be noise on a shared single-core host.
fn bench_smoke(root: &Path) -> ExitCode {
    println!("==> bench-smoke: hot_path (--smoke) -> BENCH_hot_path.json");
    // The bench binary's working directory is the package root, so the
    // JSON path is made absolute to land at the workspace root.
    let json = root.join("BENCH_hot_path.json");
    let ok = Command::new("cargo")
        .args([
            "bench",
            "-p",
            "fgcache-bench",
            "--bench",
            "hot_path",
            "--",
            "--smoke",
            "--json",
        ])
        .arg(&json)
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask bench-smoke: hot_path bench failed");
        ExitCode::FAILURE
    }
}

/// Runs the full local gate in order, stopping at the first failure.
fn ci(root: &Path) -> ExitCode {
    let steps: [(&str, &[&str]); 4] = [
        ("cargo fmt --check", &["fmt", "--check"]),
        (
            "cargo clippy --workspace --all-targets -- -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        (
            "cargo build --release --workspace",
            &["build", "--release", "--workspace"],
        ),
        ("cargo test -q --workspace", &["test", "-q", "--workspace"]),
    ];
    // lint runs between clippy and build, in-process.
    for (i, (label, cargo_args)) in steps.iter().enumerate() {
        if i == 2 && lint(root) != ExitCode::SUCCESS {
            return ExitCode::FAILURE;
        }
        println!("==> {label}");
        let ok = Command::new("cargo")
            .args(*cargo_args)
            .current_dir(root)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !ok {
            eprintln!("xtask ci: step failed: {label}");
            return ExitCode::FAILURE;
        }
    }
    // The loopback smoke rides on the release build from step 3: the
    // bench-net differential check exits nonzero unless the TCP server's
    // stats are byte-identical to the in-process replay.
    println!("==> loopback smoke: fgcache bench-net");
    let ok = Command::new(root.join("target/release/fgcache"))
        .args([
            "bench-net",
            "--loopback",
            "true",
            "--clients",
            "2",
            "--events",
            "2000",
            "--capacity",
            "200",
            "--shards",
            "2",
            "--batch",
            "1,8",
            "--seed",
            "2002",
        ])
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !ok {
        eprintln!("xtask ci: step failed: loopback smoke");
        return ExitCode::FAILURE;
    }
    // Run-only perf gate: records BENCH_hot_path.json, enforces nothing.
    if bench_smoke(root) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    // The extended-seed fuzz pass rides on the build the test step made.
    if fuzz(root) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    println!("xtask ci: all steps passed");
    ExitCode::SUCCESS
}

/// A workspace member crate: package name, manifest path, crate root.
struct Member {
    name: String,
    manifest: PathBuf,
    src_dir: PathBuf,
    crate_root: PathBuf,
}

/// Enumerates workspace members: the root package plus every `crates/*`
/// directory containing a `Cargo.toml`.
fn workspace_members(root: &Path) -> Vec<Member> {
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect()
        })
        .unwrap_or_default();
    dirs.sort();
    manifests.extend(dirs.iter().map(|d| d.join("Cargo.toml")));

    manifests
        .into_iter()
        .filter_map(|manifest| {
            let dir = manifest.parent()?.to_path_buf();
            let text = fs::read_to_string(&manifest).ok()?;
            let name = package_name(&text)?;
            let src_dir = dir.join("src");
            let lib = src_dir.join("lib.rs");
            let crate_root = if lib.is_file() {
                lib
            } else {
                src_dir.join("main.rs")
            };
            Some(Member {
                name,
                manifest,
                src_dir,
                crate_root,
            })
        })
        .collect()
}

/// Extracts `name = "..."` from a manifest's `[package]` section.
fn package_name(manifest_text: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest_text.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']') == "package";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Check 1: every dependency in every manifest is a workspace crate.
fn check_dependency_allowlist(
    root: &Path,
    members: &[Member],
    allowed: &[String],
    violations: &mut Vec<Violation>,
) {
    for member in members {
        let Ok(text) = fs::read_to_string(&member.manifest) else {
            violations.push(Violation {
                file: member.manifest.clone(),
                line: None,
                message: "unreadable manifest".into(),
            });
            continue;
        };
        let is_root = member.manifest == root.join("Cargo.toml");
        let mut in_deps = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if let Some(section) = line.strip_prefix('[') {
                let section = section.trim_end_matches(']');
                // The root manifest also declares [workspace.dependencies];
                // member manifests reference those entries by name.
                in_deps = section.ends_with("dependencies")
                    && (is_root || !section.starts_with("workspace"));
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(dep) = line.split('=').next().map(str::trim) else {
                continue;
            };
            // `foo.workspace = true` is a dotted key: the dep is `foo`.
            let dep = dep.split('.').next().unwrap_or(dep).trim_matches('"');
            if dep.is_empty() {
                continue;
            }
            if !allowed.iter().any(|a| a == dep) {
                violations.push(Violation {
                    file: member.manifest.clone(),
                    line: Some(idx + 1),
                    message: format!(
                        "external dependency `{dep}` — the workspace is hermetic; \
                         only workspace crates are allowed"
                    ),
                });
            }
        }
    }
}

/// Check 2: every crate root forbids unsafe code and denies missing docs.
fn check_crate_attributes(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        let Ok(text) = fs::read_to_string(&member.crate_root) else {
            violations.push(Violation {
                file: member.crate_root.clone(),
                line: None,
                message: "unreadable crate root".into(),
            });
            continue;
        };
        for required in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !text.lines().any(|l| l.trim() == required) {
                violations.push(Violation {
                    file: member.crate_root.clone(),
                    line: None,
                    message: format!("crate root is missing `{required}`"),
                });
            }
        }
    }
}

/// Check 3: no `.unwrap()` / `todo!()` / `unimplemented!()` outside
/// `#[cfg(test)]` in any `src/` file.
fn check_panic_free_sources(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_panic_markers(&file, &text, violations);
        }
    }
}

/// Recursively lists `.rs` files under `dir`, sorted for stable output.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = fs::read_dir(&d) else {
            continue;
        };
        for entry in rd.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Scans one source file for forbidden panic constructs, skipping
/// comments and everything from the first `#[cfg(test)]` on (test
/// modules sit at the end of each file in this workspace; a forbidden
/// call *above* the test module is still caught).
fn scan_panic_markers(file: &Path, text: &str, violations: &mut Vec<Violation>) {
    // Escapes keep this file's own source text free of the markers it
    // hunts for (the scanner would otherwise flag this very line).
    const MARKERS: [&str; 3] = [".unwr\u{61}p()", "tod\u{6f}!(", "unimplement\u{65}d!("];
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue; // doc comments and ordinary comments (incl. doctests)
        }
        let code = raw.split("//").next().unwrap_or(raw);
        for marker in MARKERS {
            if code.contains(marker) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: Some(idx + 1),
                    message: format!(
                        "`{marker}` in library code — return an error or use \
                         `.expect(\"reason\")` to document the invariant"
                    ),
                });
            }
        }
    }
}

/// Check 4: no `.lock().unwrap()` chain in any `src/` file outside
/// `#[cfg(test)]`, even when the chain spans lines or whitespace. The
/// line-based check 3 already catches the marker on a single line; this
/// pass catches formatted chains like `.lock()\n    .unwrap()` that slip
/// through a per-line scan.
fn check_lock_discipline(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_lock_unwrap(&file, &text, violations);
        }
    }
}

/// Scans one source file for `.lock()` whose next chained call is the
/// forbidden unwrap, ignoring whitespace between the two calls. Stops at
/// the first `#[cfg(test)]` like the panic scan; skips comment lines.
fn scan_lock_unwrap(file: &Path, text: &str, violations: &mut Vec<Violation>) {
    // Escaped so this file's own source never contains the hunted chain.
    let unwrap_marker: &str = ".unwr\u{61}p()";
    let mut code = String::new();
    let mut line_of_offset: Vec<usize> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let line_code = raw.split("//").next().unwrap_or(raw);
        for b in line_code.chars() {
            code.push(b);
            line_of_offset.push(idx + 1);
        }
        code.push('\n');
        line_of_offset.push(idx + 1);
    }
    let mut search_from = 0;
    while let Some(pos) = code[search_from..].find(".lock()") {
        let lock_at = search_from + pos;
        let after = lock_at + ".lock()".len();
        search_from = after;
        let rest = code[after..].trim_start();
        if rest.starts_with(unwrap_marker) {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: line_of_offset.get(lock_at).copied(),
                message: format!(
                    "`.lock(){unwrap_marker}` in library code — the workspace standard \
                     is `.lock().expect(\"what was poisoned\")`"
                ),
            });
        }
    }
}

/// Check 5: sockets only in `fgcache-net`. Any other crate mentioning
/// `std::net` in library code bypasses the `Transport` abstraction (and
/// would make a simulation nondeterministic); tests and comments are
/// exempt, same as the panic scan.
fn check_socket_confinement(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        if member.name == "fgcache-net" || member.name == "xtask" {
            continue; // net owns the sockets; xtask scans for the marker
        }
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_socket_use(&file, &text, violations);
        }
    }
}

/// Scans one source file for `std::net` outside comments and test
/// modules, with the marker escaped so this scanner never flags itself.
fn scan_socket_use(file: &Path, text: &str, violations: &mut Vec<Violation>) {
    let marker: &str = "std::ne\u{74}";
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = raw.split("//").next().unwrap_or(raw);
        if code.contains(marker) {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: Some(idx + 1),
                message: format!(
                    "`{marker}` outside fgcache-net — go through the `Transport` \
                     trait; only fgcache-net may open sockets"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_quoted_value() {
        let toml = "[package]\nname = \"fgcache-cache\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("fgcache-cache"));
    }

    #[test]
    fn package_name_ignores_other_sections() {
        let toml = "[dependencies]\nname = \"nope\"\n[package]\nname = \"real\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("real"));
    }

    #[test]
    fn panic_scan_flags_unwrap_but_not_comments_or_tests() {
        let src = "\
fn f() {\n\
    let x = g().unwrap();\n\
    // a comment mentioning .unwrap() is fine\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { h().unwrap(); }\n\
}\n";
        let mut v = Vec::new();
        scan_panic_markers(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, Some(2));
    }

    #[test]
    fn panic_scan_flags_todo_and_unimplemented() {
        let src = "fn a() { todo!() }\nfn b() { unimplemented!(\"later\") }\n";
        let mut v = Vec::new();
        scan_panic_markers(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lint_passes_on_this_workspace() {
        let root = workspace_root();
        let members = workspace_members(&root);
        assert!(
            members.iter().any(|m| m.name == "xtask"),
            "xtask must lint itself"
        );
        let allowed: Vec<String> = members.iter().map(|m| m.name.clone()).collect();
        let mut violations = Vec::new();
        check_dependency_allowlist(&root, &members, &allowed, &mut violations);
        check_crate_attributes(&members, &mut violations);
        check_panic_free_sources(&members, &mut violations);
        check_lock_discipline(&members, &mut violations);
        check_socket_confinement(&members, &mut violations);
        let rendered: Vec<String> = violations.iter().map(Violation::to_string).collect();
        assert!(rendered.is_empty(), "violations: {rendered:#?}");
    }

    #[test]
    fn socket_scan_flags_use_but_not_comments_or_tests() {
        let src = "\
use std::net::TcpStream;\n\
// a comment mentioning std::net is fine\n\
fn f() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::net::TcpListener;\n\
}\n";
        let mut v = Vec::new();
        scan_socket_use(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, Some(1));
    }

    #[test]
    fn socket_confinement_exempts_the_net_crate() {
        let root = workspace_root();
        let members = workspace_members(&root);
        let net: Vec<&Member> = members.iter().filter(|m| m.name == "fgcache-net").collect();
        assert_eq!(net.len(), 1, "fgcache-net must be a workspace member");
        // Sanity: the net crate really does use sockets, so the exemption
        // is load-bearing rather than vacuous.
        let server = net[0].src_dir.join("server.rs");
        let text = fs::read_to_string(server).unwrap();
        assert!(text.contains(concat!("std::ne", "t")));
    }

    #[test]
    fn lock_scan_flags_single_line_chain() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, Some(1));
        assert!(
            v[0].to_string().contains("lock discipline") || v[0].to_string().contains("expect")
        );
    }

    #[test]
    fn lock_scan_flags_chain_split_across_lines() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {\n\
    let _ = m\n\
        .lock()\n\
        .unwrap();\n\
}\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        // The violation points at the `.lock()` line.
        assert_eq!(v[0].line, Some(3));
    }

    #[test]
    fn lock_scan_allows_expect_and_skips_tests_and_comments() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {\n\
    let _ = m.lock().expect(\"shard poisoned\");\n\
    // commentary: .lock().unwrap() is forbidden\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t(m: &std::sync::Mutex<u32>) { m.lock().unwrap(); }\n\
}\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allowlist_rejects_external_crates() {
        let tmp = std::env::temp_dir().join("xtask-allowlist-test");
        let crate_dir = tmp.join("crates").join("demo");
        fs::create_dir_all(crate_dir.join("src")).unwrap();
        fs::write(
            tmp.join("Cargo.toml"),
            "[package]\nname = \"demo-root\"\n[dependencies]\nserde = \"1\"\n",
        )
        .unwrap();
        fs::write(
            crate_dir.join("Cargo.toml"),
            "[package]\nname = \"demo\"\n[dependencies]\ndemo-root = \"0.1\"\n",
        )
        .unwrap();
        fs::write(crate_dir.join("src").join("lib.rs"), "").unwrap();
        let members = workspace_members(&tmp);
        let allowed: Vec<String> = members.iter().map(|m| m.name.clone()).collect();
        let mut violations = Vec::new();
        check_dependency_allowlist(&tmp, &members, &allowed, &mut violations);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].to_string().contains("serde"));
        fs::remove_dir_all(&tmp).ok();
    }
}

//! The aggregating cache implementation.

use std::fmt;

use fgcache_cache::{Cache, CacheStats, LruCache};
use fgcache_successor::{GroupBuilder, LruSuccessorList, SuccessorTable};
use fgcache_types::hash::FastMap;
use fgcache_types::sizing::SizeCostAssigner;
use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

/// Where speculative group members are placed in the LRU order.
///
/// The paper appends them to the tail and reports that "exact placement of
/// the remaining group members was found to have little effect if the
/// cache is several times the group size" — [`InsertionPolicy::Head`]
/// exists to reproduce that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertionPolicy {
    /// Append group members at the LRU tail (the paper's choice).
    #[default]
    Tail,
    /// Insert group members directly below the requested file at the MRU
    /// head (aggressive placement).
    Head,
}

impl fmt::Display for InsertionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InsertionPolicy::Tail => "tail",
            InsertionPolicy::Head => "head",
        })
    }
}

/// Where the successor table gets its observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetadataSource {
    /// Every request handled by this cache feeds the table (client
    /// deployment on the raw stream, or an uncooperative server on the
    /// miss stream).
    #[default]
    Requests,
    /// The table is fed externally via
    /// [`AggregatingCache::observe_metadata`] (piggy-backed client
    /// statistics at the server); handled requests do *not* feed it.
    External,
}

impl fmt::Display for MetadataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MetadataSource::Requests => "requests",
            MetadataSource::External => "external",
        })
    }
}

/// Counters describing the group-fetch behaviour of an
/// [`AggregatingCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupFetchStats {
    /// Demand fetches performed (equals cache misses).
    pub demand_fetches: u64,
    /// Total files transferred across all group fetches (requested +
    /// speculative members actually brought in).
    pub files_transferred: u64,
    /// Speculative members that were already resident and therefore not
    /// re-fetched.
    pub members_already_resident: u64,
    /// Total size units moved across all group fetches. Zero in the
    /// fixed-cost configuration (no size assigner), where every file is
    /// implicitly one unit and `files_transferred` already is the
    /// payload; in sized configurations this is what
    /// `CostModel::total_sized` prices.
    pub size_units_transferred: u64,
}

impl GroupFetchStats {
    /// Mean number of files per demand fetch (≥ 1); 0 with no fetches.
    pub fn mean_group_size(&self) -> f64 {
        if self.demand_fetches == 0 {
            0.0
        } else {
            self.files_transferred as f64 / self.demand_fetches as f64
        }
    }
}

/// The aggregating cache: LRU residency + successor-driven group fetching.
///
/// Construct via [`AggregatingCacheBuilder`](crate::AggregatingCacheBuilder).
/// With `group_size == 1` the cache degenerates to plain LRU, which is how
/// the experiments obtain their baseline from identical code paths.
#[derive(Debug, Clone)]
pub struct AggregatingCache {
    cache: LruCache,
    table: SuccessorTable<LruSuccessorList>,
    builder: GroupBuilder,
    insertion: InsertionPolicy,
    metadata: MetadataSource,
    accesses: u64,
    group_stats: GroupFetchStats,
    // Size/cost awareness. `None` is the paper's fixed-cost model: every
    // file is one unit and the code below takes the legacy path
    // untouched. `Some(assigner)` switches residency accounting to size
    // units (the count capacity doubles as the unit capacity); with a
    // uniform assigner the sized path is bit-identical to the legacy one
    // (the differential fuzzers enforce this, residency order included).
    assigner: Option<SizeCostAssigner>,
    units_used: u64,
    // Whole-group (bundle) eviction: reclaiming an LRU victim also
    // reclaims its still-resident co-fetched group members. A demand hit
    // detaches a file from its fetch group (it has proven independent
    // worth), so bundles shrink to the members that never did.
    bundle_eviction: bool,
    group_of: FastMap<FileId, u64>,
    group_members: FastMap<u64, Vec<FileId>>,
    // Scratch buffers reused across misses so steady-state group
    // assembly performs zero heap allocation (group sizes are single
    // digits, so these reach their high-water mark almost immediately).
    scratch_members: Vec<FileId>,
    scratch_ranked: Vec<FileId>,
    fetched: Vec<FileId>,
}

impl AggregatingCache {
    pub(crate) fn from_parts(
        cache: LruCache,
        table: SuccessorTable<LruSuccessorList>,
        builder: GroupBuilder,
        insertion: InsertionPolicy,
        metadata: MetadataSource,
        assigner: Option<SizeCostAssigner>,
        bundle_eviction: bool,
    ) -> Self {
        AggregatingCache {
            cache,
            table,
            builder,
            insertion,
            metadata,
            accesses: 0,
            group_stats: GroupFetchStats::default(),
            assigner,
            units_used: 0,
            bundle_eviction,
            group_of: FastMap::default(),
            group_members: FastMap::default(),
            scratch_members: Vec::new(),
            scratch_ranked: Vec::new(),
            fetched: Vec::new(),
        }
    }

    /// Handles one demand request.
    ///
    /// Updates the successor table (when the metadata source is
    /// [`MetadataSource::Requests`]), then serves the request: a hit
    /// refreshes LRU position; a miss performs a *group fetch* — the
    /// requested file enters at the MRU head and the group's speculative
    /// members are inserted per the configured [`InsertionPolicy`].
    pub fn handle_access(&mut self, file: FileId) -> AccessOutcome {
        self.handle_access_with_fetch(file).0
    }

    /// Like [`Self::handle_access`], but additionally returns the exact
    /// list of files a demand miss transferred (the requested file first,
    /// then the speculative members actually brought in — already-resident
    /// members and capacity-truncated ones excluded). `None` on a hit.
    ///
    /// This is the hook a fetch transport uses to carry *real* group
    /// fetches over a wire: the returned list's length always equals the
    /// increment to [`GroupFetchStats::files_transferred`], so transport
    /// counters and cache counters share one source of truth.
    ///
    /// The list borrows an internal scratch buffer (overwritten by the
    /// next miss), so the steady-state miss path allocates nothing;
    /// callers that need to keep the list copy it out (`to_vec`).
    pub fn handle_access_with_fetch(&mut self, file: FileId) -> (AccessOutcome, Option<&[FileId]>) {
        self.accesses += 1;
        if self.metadata == MetadataSource::Requests {
            self.table.record(file);
        }
        if self.cache.contains(file) {
            if self.bundle_eviction {
                // The file proved independent worth: detach it from its
                // fetch group so a bundle eviction no longer reclaims it.
                self.group_of.remove(&file);
            }
            return (self.cache.access(file), None);
        }
        if let Some(assigner) = self.assigner {
            return self.sized_miss(file, assigner);
        }
        // Demand miss → group fetch. The buffers are taken out of self
        // so the builder and cache can be borrowed alongside them.
        self.group_stats.demand_fetches += 1;
        let mut members = std::mem::take(&mut self.scratch_members);
        let mut ranked = std::mem::take(&mut self.scratch_ranked);
        self.builder
            .build_into(&self.table, file, &mut members, &mut ranked);
        let outcome = self.cache.access(file); // inserts requested at MRU
        self.group_stats.files_transferred += 1;
        let mut fetched = std::mem::take(&mut self.fetched);
        fetched.clear();
        fetched.push(file);
        // A group never displaces its own requested file, so at most
        // capacity − 1 speculative members enter.
        let max_members = self.cache.capacity().saturating_sub(1);
        for &m in &members {
            if self.cache.contains(m) {
                self.group_stats.members_already_resident += 1;
            } else if fetched.len() - 1 < max_members {
                fetched.push(m);
            }
        }
        self.group_stats.files_transferred += (fetched.len() - 1) as u64;
        match self.insertion {
            InsertionPolicy::Tail => self.cache.insert_speculative_batch(&fetched[1..]),
            InsertionPolicy::Head => {
                // Place members directly below the requested file. Insert
                // the whole batch at the tail first — the batch insert
                // evicts only tail entries and never the just-fetched
                // requested file — then promote least-confident first and
                // finally re-assert the requested file at the MRU head.
                // Promoting resident entries cannot evict, so the
                // requested file survives its own group fetch at any
                // capacity ≥ group size.
                self.cache.insert_speculative_batch(&fetched[1..]);
                for &m in fetched[1..].iter().rev() {
                    self.cache.promote_to_head(m);
                }
                self.cache.promote_to_head(file);
            }
        }
        self.scratch_members = members;
        self.scratch_ranked = ranked;
        self.fetched = fetched;
        (outcome, Some(&self.fetched))
    }

    /// The capacity in size units. The count capacity doubles as the
    /// unit capacity: with uniform sizes (one unit per file) the two
    /// accountings coincide, which is what makes the sized path
    /// degenerate bit-identically to the legacy one.
    fn unit_capacity(&self) -> u64 {
        self.cache.capacity() as u64
    }

    /// Evicts `file`, keeping the unit and group accounting in sync.
    fn evict_sized(&mut self, file: FileId, assigner: SizeCostAssigner) {
        if self.cache.evict_file(file) {
            self.units_used -= u64::from(assigner.size_of(file));
            self.group_of.remove(&file);
        }
    }

    /// Evicts until `need` more units fit, mirroring the legacy victim
    /// sequence: always the LRU tail next — except under bundle
    /// eviction, where the tail victim's whole still-attached fetch
    /// group goes with it.
    ///
    /// Callers guarantee `need` fits the cache with the current fetch's
    /// already-admitted files untagged, so the loop never reclaims them.
    fn make_units_room(&mut self, need: u64, assigner: SizeCostAssigner) {
        while self.units_used + need > self.unit_capacity() {
            let Some(victim) = self.cache.lru() else {
                break;
            };
            if self.bundle_eviction {
                if let Some(&gid) = self.group_of.get(&victim) {
                    if let Some(members) = self.group_members.remove(&gid) {
                        for m in members {
                            // Only still-attached members: files re-fetched
                            // under a later group (or demand-hit, which
                            // detaches) stay resident.
                            if self.group_of.get(&m) == Some(&gid) {
                                self.evict_sized(m, assigner);
                            }
                        }
                        continue; // the tagged victim was in its own group
                    }
                }
            }
            self.evict_sized(victim, assigner);
        }
    }

    /// The demand-miss path when files carry sizes: admission, eviction
    /// and the transfer ledger all run in size units, and a fetched
    /// group is charged and (optionally) evicted as a unit.
    ///
    /// The operation order deliberately mirrors the legacy path step for
    /// step — room for the requested file, admit it, member scan, room
    /// for the member batch, batch insert — so a uniform assigner
    /// reproduces the legacy victim sequence exactly.
    fn sized_miss(
        &mut self,
        file: FileId,
        assigner: SizeCostAssigner,
    ) -> (AccessOutcome, Option<&[FileId]>) {
        self.group_stats.demand_fetches += 1;
        let file_units = u64::from(assigner.size_of(file));
        let mut fetched = std::mem::take(&mut self.fetched);
        fetched.clear();
        fetched.push(file);
        if file_units > self.unit_capacity() {
            // Larger than the whole cache: the fetch happens (and is
            // charged) but admission is impossible, and speculating on
            // group members of a file we cannot even keep is pointless.
            self.cache.record_bypass_miss();
            self.group_stats.files_transferred += 1;
            self.group_stats.size_units_transferred += file_units;
            self.fetched = fetched;
            return (AccessOutcome::Miss, Some(&self.fetched));
        }
        let mut members = std::mem::take(&mut self.scratch_members);
        let mut ranked = std::mem::take(&mut self.scratch_ranked);
        self.builder
            .build_into(&self.table, file, &mut members, &mut ranked);
        self.make_units_room(file_units, assigner);
        let outcome = self.cache.access(file);
        self.units_used += file_units;
        self.group_stats.files_transferred += 1;
        // Bundle-aware admission: members join while the group's
        // cumulative footprint still fits alongside the requested file;
        // the rest of the group is trimmed, not force-fit.
        let max_members = self.cache.capacity().saturating_sub(1);
        let mut batch_units = 0u64;
        for &m in &members {
            if self.cache.contains(m) {
                self.group_stats.members_already_resident += 1;
            } else if fetched.len() - 1 < max_members {
                let m_units = u64::from(assigner.size_of(m));
                if file_units + batch_units + m_units <= self.unit_capacity() {
                    fetched.push(m);
                    batch_units += m_units;
                }
            }
        }
        self.group_stats.files_transferred += (fetched.len() - 1) as u64;
        self.group_stats.size_units_transferred += file_units + batch_units;
        // Room for the whole batch up front (the group is charged as a
        // unit), so the inner cache never evicts on its own and batch
        // members cannot displace each other — or the requested file,
        // which is still untagged and sits at the MRU head.
        self.make_units_room(batch_units, assigner);
        match self.insertion {
            InsertionPolicy::Tail => self.cache.insert_speculative_batch(&fetched[1..]),
            InsertionPolicy::Head => {
                self.cache.insert_speculative_batch(&fetched[1..]);
                for &m in fetched[1..].iter().rev() {
                    self.cache.promote_to_head(m);
                }
                self.cache.promote_to_head(file);
            }
        }
        self.units_used += batch_units;
        if self.bundle_eviction {
            let gid = self.group_stats.demand_fetches;
            for &f in &fetched {
                self.group_of.insert(f, gid);
            }
            self.group_members.insert(gid, fetched.clone());
        }
        self.scratch_members = members;
        self.scratch_ranked = ranked;
        self.fetched = fetched;
        (outcome, Some(&self.fetched))
    }

    /// Feeds one access observation into the successor table without
    /// touching the cache — piggy-backed client statistics arriving at a
    /// server-deployed aggregating cache.
    pub fn observe_metadata(&mut self, file: FileId) {
        self.table.record(file);
    }

    /// Applies one deferred fast-path hit (see the sharded cache's
    /// pending-touch ring): the access is recorded exactly as
    /// [`handle_access`](Self::handle_access) would record a hit — the
    /// access counter, the metadata feed and the LRU promotion all fire —
    /// so a single-threaded interleave of fast-path hits and locked
    /// operations is bit-identical to the plain locked execution.
    ///
    /// If the file was evicted between the lock-free residency check and
    /// this drain (only possible under concurrent misses), the hit is
    /// recorded in the statistics without resurrecting the entry.
    pub fn apply_touch(&mut self, file: FileId) {
        self.accesses += 1;
        if self.metadata == MetadataSource::Requests {
            self.table.record(file);
        }
        if self.cache.contains(file) {
            if self.bundle_eviction {
                self.group_of.remove(&file);
            }
            self.cache.access(file);
        } else {
            self.cache.record_detached_hit();
        }
    }

    /// Enables or disables the residency eviction log (see
    /// [`LruCache::set_eviction_log`]).
    pub fn set_eviction_log(&mut self, enabled: bool) {
        self.cache.set_eviction_log(enabled);
    }

    /// Drains the residency eviction log (see
    /// [`LruCache::drain_eviction_log`]): `f` is invoked once per evicted
    /// file, oldest first, and the log is cleared.
    pub fn drain_evictions(&mut self, f: impl FnMut(FileId)) {
        self.cache.drain_eviction_log(f);
    }

    /// The file list transferred by the most recent demand miss (the
    /// same slice [`Self::handle_access_with_fetch`] returned for it).
    /// Contents are meaningful only directly after a miss — the next
    /// miss overwrites the buffer. Lets the sharded cache's fast path
    /// read the fetch list *after* releasing the mutable borrow that
    /// draining the eviction log requires.
    pub fn fetched(&self) -> &[FileId] {
        &self.fetched
    }

    /// Demand fetches performed so far (the paper's Figure 3 metric;
    /// equal to the miss count).
    pub fn demand_fetches(&self) -> u64 {
        self.group_stats.demand_fetches
    }

    /// Demand hit rate over all handled requests.
    pub fn hit_rate(&self) -> f64 {
        self.cache.stats().hit_rate()
    }

    /// Requests handled.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Group-fetch statistics.
    pub fn group_stats(&self) -> &GroupFetchStats {
        &self.group_stats
    }

    /// The size/cost assigner, if this cache runs in sized mode.
    pub fn size_assigner(&self) -> Option<SizeCostAssigner> {
        self.assigner
    }

    /// Size units currently resident. Only meaningful in sized mode
    /// (always 0 in the fixed-cost configuration, where [`Self::len`]
    /// is the occupancy).
    pub fn units_used(&self) -> u64 {
        self.units_used
    }

    /// Whether whole-group (bundle) eviction is enabled.
    pub fn bundle_eviction(&self) -> bool {
        self.bundle_eviction
    }

    /// The configured group size `g`.
    pub fn group_size(&self) -> usize {
        self.builder.group_size()
    }

    /// The successor table (for inspection and analysis).
    pub fn successor_table(&self) -> &SuccessorTable<LruSuccessorList> {
        &self.table
    }

    /// Metadata footprint: total successor entries tracked.
    pub fn metadata_entries(&self) -> usize {
        self.table.metadata_entries()
    }

    /// Resident files in MRU→LRU order (for partition audits and tests).
    pub fn residents(&self) -> impl Iterator<Item = FileId> + '_ {
        self.cache.iter_mru()
    }
}

impl Cache for AggregatingCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        self.handle_access(file)
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        let Some(assigner) = self.assigner else {
            return self.cache.insert_speculative(file);
        };
        if self.cache.contains(file) {
            return false;
        }
        let units = u64::from(assigner.size_of(file));
        if units > self.unit_capacity() {
            return false;
        }
        self.make_units_room(units, assigner);
        let inserted = self.cache.insert_speculative(file);
        if inserted {
            self.units_used += units;
        }
        inserted
    }

    fn contains(&self, file: FileId) -> bool {
        self.cache.contains(file)
    }

    fn len(&self) -> usize {
        self.cache.len()
    }

    fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    fn name(&self) -> &'static str {
        "agg"
    }

    fn clear(&mut self) {
        self.table = self.table.fresh_like();
        self.cache.clear();
        self.accesses = 0;
        self.group_stats = GroupFetchStats::default();
        self.units_used = 0;
        self.group_of.clear();
        self.group_members.clear();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("AggregatingCache", detail));
        self.cache.check_invariants()?;
        self.table.check_invariants()?;
        let gs = &self.group_stats;
        // Every demand fetch is an LRU miss and moves at least the
        // requested file, at most the whole group.
        if gs.demand_fetches != self.cache.stats().misses {
            return err(format!(
                "{} demand fetches but {} recorded misses",
                gs.demand_fetches,
                self.cache.stats().misses
            ));
        }
        if gs.files_transferred < gs.demand_fetches {
            return err(format!(
                "{} files transferred across {} fetches (requested file must always move)",
                gs.files_transferred, gs.demand_fetches
            ));
        }
        let g = self.builder.group_size() as u64;
        if gs.files_transferred > gs.demand_fetches.saturating_mul(g) {
            return err(format!(
                "{} files transferred exceeds {} fetches x group size {g}",
                gs.files_transferred, gs.demand_fetches
            ));
        }
        match self.assigner {
            None => {
                // Fixed-cost configuration: none of the sized machinery
                // may have been engaged.
                if self.units_used != 0 {
                    return err(format!(
                        "{} units used without a size assigner",
                        self.units_used
                    ));
                }
                if gs.size_units_transferred != 0 {
                    return err(format!(
                        "{} size units transferred without a size assigner",
                        gs.size_units_transferred
                    ));
                }
                if !self.group_of.is_empty() || !self.group_members.is_empty() {
                    return err("group tags present without a size assigner".to_string());
                }
            }
            Some(assigner) => {
                if self.units_used > self.unit_capacity() {
                    return err(format!(
                        "{} units used exceeds unit capacity {}",
                        self.units_used,
                        self.unit_capacity()
                    ));
                }
                let resident: u64 = self
                    .cache
                    .iter_mru()
                    .map(|f| u64::from(assigner.size_of(f)))
                    .sum();
                if resident != self.units_used {
                    return err(format!(
                        "residents occupy {resident} units but the ledger says {}",
                        self.units_used
                    ));
                }
                // Every file moved carries at least one unit.
                if gs.size_units_transferred < gs.files_transferred {
                    return err(format!(
                        "{} size units transferred across {} files (each is >= 1 unit)",
                        gs.size_units_transferred, gs.files_transferred
                    ));
                }
                for &f in self.group_of.keys() {
                    if !self.cache.contains(f) {
                        return err(format!("group tag for non-resident {f}"));
                    }
                }
                if !self.bundle_eviction && !self.group_of.is_empty() {
                    return err("group tags present without bundle eviction".to_string());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggregatingCacheBuilder;
    use fgcache_types::sizing::SizeDistribution;

    fn agg(capacity: usize, g: usize) -> AggregatingCache {
        AggregatingCacheBuilder::new(capacity)
            .group_size(g)
            .build()
            .unwrap()
    }

    #[test]
    fn group_size_one_equals_plain_lru() {
        let mut plain = LruCache::new(4);
        let mut a = agg(4, 1);
        let seq: Vec<u64> = (0..200)
            .map(|i| [1, 2, 3, 1, 4, 5, 1, 2][(i % 8) as usize])
            .collect();
        for &id in &seq {
            let expected = plain.access(FileId(id));
            let got = a.handle_access(FileId(id));
            assert_eq!(expected, got, "diverged at file {id}");
        }
        assert_eq!(plain.stats().misses, a.demand_fetches());
    }

    #[test]
    fn grouping_reduces_fetches_on_repetitive_workload() {
        let seq: Vec<u64> = (0..400).map(|i| (i % 20) as u64).collect();
        let run = |g: usize| {
            let mut a = agg(10, g); // cache smaller than the 20-file loop
            for &id in &seq {
                a.handle_access(FileId(id));
            }
            a.demand_fetches()
        };
        let lru = run(1);
        let g5 = run(5);
        assert!(
            g5 < lru / 2,
            "g5 fetches {g5} not well below LRU fetches {lru}"
        );
    }

    #[test]
    fn requested_file_is_mru_members_at_tail() {
        let mut a = agg(10, 3);
        for id in [1u64, 2, 3, 1, 2, 3] {
            a.handle_access(FileId(id));
        }
        // Access a cold file with a known chain 1→2→3.
        let mut a2 = agg(10, 3);
        for id in [1u64, 2, 3, 1, 2, 3] {
            a2.observe_metadata(FileId(id));
        }
        // metadata external; no residency yet
        assert_eq!(a2.len(), 0);
    }

    #[test]
    fn miss_triggers_group_prefetch() {
        let mut a = AggregatingCacheBuilder::new(10)
            .group_size(3)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in [1u64, 2, 3, 1, 2, 3] {
            a.observe_metadata(FileId(id));
        }
        assert!(a.handle_access(FileId(1)).is_miss());
        // Group {1,2,3} fetched: 2 and 3 now resident.
        assert!(a.contains(FileId(2)));
        assert!(a.contains(FileId(3)));
        assert!(a.handle_access(FileId(2)).is_hit());
        assert_eq!(a.stats().speculative_hits, 1);
        assert_eq!(a.group_stats().files_transferred, 3);
    }

    #[test]
    fn fetch_list_matches_transfer_counter() {
        let mut a = AggregatingCacheBuilder::new(10)
            .group_size(3)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in [1u64, 2, 3, 1, 2, 3] {
            a.observe_metadata(FileId(id));
        }
        let before = a.group_stats().files_transferred;
        let (outcome, fetch) = a.handle_access_with_fetch(FileId(1));
        assert!(outcome.is_miss());
        let fetched = fetch.expect("a miss always fetches").to_vec();
        // Requested file first, then the speculative members brought in;
        // length equals the files_transferred increment exactly.
        assert_eq!(fetched[0], FileId(1));
        assert_eq!(
            fetched.len() as u64,
            a.group_stats().files_transferred - before
        );
        for &f in &fetched {
            assert!(a.contains(f), "{f} was fetched but is not resident");
        }
        // A hit fetches nothing.
        let (outcome, fetch) = a.handle_access_with_fetch(FileId(1));
        assert!(outcome.is_hit());
        assert!(fetch.is_none());
    }

    #[test]
    fn already_resident_members_not_transferred() {
        let mut a = AggregatingCacheBuilder::new(10)
            .group_size(3)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in [1u64, 2, 1, 2] {
            a.observe_metadata(FileId(id));
        }
        a.handle_access(FileId(1)); // fetches group {1, 2}
        assert!(a.contains(FileId(2)));
        // Teach 3 → 2, then request 3: its group member 2 is already
        // resident and must not be transferred again.
        for id in [3u64, 2, 3, 2] {
            a.observe_metadata(FileId(id));
        }
        let before = a.group_stats().files_transferred;
        a.handle_access(FileId(3));
        let transferred = a.group_stats().files_transferred - before;
        assert_eq!(transferred, 1, "only the requested file moves");
        assert!(a.group_stats().members_already_resident > 0);
    }

    #[test]
    fn head_insertion_policy_works() {
        let mut a = AggregatingCacheBuilder::new(10)
            .group_size(3)
            .insertion_policy(InsertionPolicy::Head)
            .build()
            .unwrap();
        for id in [1u64, 2, 3, 1, 2, 3, 1] {
            a.handle_access(FileId(id));
        }
        assert!(a.len() <= 10);
        assert!(a.hit_rate() > 0.0);
    }

    #[test]
    fn head_insertion_requested_file_survives_tiny_capacity() {
        // Regression guard for the Head-insertion ordering hazard: at
        // capacities barely above the group size, inserting/promoting
        // speculative members after the requested file must never evict
        // the file that was just demand-fetched. Exercised at capacity 2
        // and 3 with every admissible group size and a dense cyclic
        // workload so every miss carries a full group.
        for capacity in [2usize, 3] {
            for g in 2..=capacity {
                let mut a = AggregatingCacheBuilder::new(capacity)
                    .group_size(g)
                    .insertion_policy(InsertionPolicy::Head)
                    .build()
                    .unwrap();
                for i in 0..400u64 {
                    let f = FileId(i % 5);
                    a.handle_access(FileId(f.as_u64()));
                    assert!(
                        a.contains(f),
                        "requested file {f} evicted by its own group fetch \
                         (capacity {capacity}, group size {g})"
                    );
                    a.check_invariants().unwrap();
                }
            }
        }
    }

    #[test]
    fn head_insertion_members_sit_below_requested_file() {
        // After a cold miss with a known chain 1→2→3, Head insertion must
        // leave the requested file at the MRU head with the members
        // directly below it, most-confident first.
        let mut a = AggregatingCacheBuilder::new(10)
            .group_size(3)
            .insertion_policy(InsertionPolicy::Head)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in [1u64, 2, 3, 1, 2, 3] {
            a.observe_metadata(FileId(id));
        }
        a.handle_access(FileId(1));
        let order: Vec<FileId> = a.residents().collect();
        assert_eq!(order, vec![FileId(1), FileId(2), FileId(3)]);
    }

    #[test]
    fn mean_group_size_bounded_by_g() {
        let mut a = agg(50, 5);
        for i in 0..500u64 {
            a.handle_access(FileId(i % 25));
        }
        let mean = a.group_stats().mean_group_size();
        assert!((1.0..=5.0).contains(&mean), "mean group size {mean}");
    }

    #[test]
    fn cache_trait_roundtrip() {
        let mut a = agg(4, 2);
        assert_eq!(a.name(), "agg");
        assert_eq!(a.capacity(), 4);
        assert!(a.access(FileId(1)).is_miss());
        assert!(a.contains(FileId(1)));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.accesses(), 0);
        assert_eq!(a.metadata_entries(), 0);
    }

    #[test]
    fn uniform_sized_path_is_bit_identical_to_legacy() {
        // The acceptance bar for the whole size/cost feature: with the
        // uniform assigner (size = cost = 1) the sized code path must
        // replay exactly like the fixed-cost path — outcomes, fetch
        // lists, residency order, statistics, everything.
        use fgcache_types::rng::RandomSource;
        use fgcache_types::SeededRng;
        for (capacity, g) in [(4usize, 2usize), (10, 3), (10, 5), (64, 8)] {
            let mut legacy = agg(capacity, g);
            let mut sized = AggregatingCacheBuilder::new(capacity)
                .group_size(g)
                .sizes(SizeCostAssigner::uniform())
                .build()
                .unwrap();
            let mut rng = SeededRng::new(0xC057_C057 ^ capacity as u64);
            for step in 0..3000 {
                let f = FileId(rng.gen_range_inclusive(0, capacity as u64 + 10));
                let (lo, lf) = legacy.handle_access_with_fetch(f);
                let lf = lf.map(<[FileId]>::to_vec);
                let (so, sf) = sized.handle_access_with_fetch(f);
                assert_eq!(
                    lo, so,
                    "outcome diverged at step {step} (cap {capacity} g {g})"
                );
                assert_eq!(
                    lf.as_deref(),
                    sf,
                    "fetch list diverged at step {step} (cap {capacity} g {g})"
                );
                sized.check_invariants().unwrap();
            }
            let l: Vec<FileId> = legacy.residents().collect();
            let r: Vec<FileId> = sized.residents().collect();
            assert_eq!(l, r, "residency order diverged (cap {capacity} g {g})");
            assert_eq!(legacy.stats(), sized.stats());
            assert_eq!(
                legacy.group_stats().demand_fetches,
                sized.group_stats().demand_fetches
            );
            assert_eq!(
                legacy.group_stats().files_transferred,
                sized.group_stats().files_transferred
            );
            assert_eq!(
                sized.group_stats().size_units_transferred,
                sized.group_stats().files_transferred,
                "uniform files are one unit each"
            );
            assert_eq!(sized.units_used(), sized.len() as u64);
        }
    }

    #[test]
    fn sized_admission_trims_group_to_unit_budget() {
        // Bimodal sizes with seed 3: file 27 is the first large (64-unit)
        // file. A cache of 10 units cannot admit it, but small group
        // members still fit — the group is trimmed, not force-fit.
        let a = SizeCostAssigner::new(SizeDistribution::Bimodal, 3);
        let large = (0u64..).map(FileId).find(|&f| a.size_of(f) == 64).unwrap();
        let mut c = AggregatingCacheBuilder::new(10)
            .group_size(3)
            .sizes(a)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        // Teach requested → {large, small}: small ids 0 and 1 are size 1.
        assert_eq!(a.size_of(FileId(0)), 1);
        assert_eq!(a.size_of(FileId(1)), 1);
        for id in [0u64, large.as_u64(), 1, 0, large.as_u64(), 1] {
            c.observe_metadata(FileId(id));
        }
        let (outcome, fetched) = c.handle_access_with_fetch(FileId(0));
        assert!(outcome.is_miss());
        let fetched = fetched.unwrap().to_vec();
        assert!(fetched.contains(&FileId(1)), "small member admitted");
        assert!(
            !fetched.contains(&large),
            "64-unit member must be trimmed from a 10-unit cache"
        );
        assert!(!c.contains(large));
        assert!(c.units_used() <= 10);
        c.check_invariants().unwrap();
    }

    #[test]
    fn oversized_file_is_served_but_never_admitted() {
        let a = SizeCostAssigner::new(SizeDistribution::Bimodal, 3);
        let large = (0u64..).map(FileId).find(|&f| a.size_of(f) == 64).unwrap();
        let mut c = AggregatingCacheBuilder::new(10)
            .group_size(3)
            .sizes(a)
            .build()
            .unwrap();
        let before = c.group_stats().size_units_transferred;
        let (outcome, fetched) = c.handle_access_with_fetch(large);
        assert!(outcome.is_miss());
        assert_eq!(fetched.unwrap(), &[large]);
        assert!(!c.contains(large), "larger than the whole cache");
        assert_eq!(c.len(), 0);
        // ...but the fetch is charged at full size.
        assert_eq!(c.group_stats().size_units_transferred - before, 64);
        assert_eq!(c.demand_fetches(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn bundle_eviction_reclaims_whole_group() {
        // External metadata, uniform sizes, bundle eviction on: fetch the
        // group {1, 2, 3} cold, fill the cache with unrelated files, and
        // watch the group leave together when its LRU-most member is
        // victimised.
        let mut c = AggregatingCacheBuilder::new(6)
            .group_size(3)
            .sizes(SizeCostAssigner::uniform())
            .bundle_eviction(true)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in [1u64, 2, 3, 1, 2, 3] {
            c.observe_metadata(FileId(id));
        }
        c.handle_access(FileId(1)); // fetches {1, 2, 3}, all tagged
        assert!(c.contains(FileId(2)) && c.contains(FileId(3)));
        // Three unrelated misses fill the cache to 6/6; the group sits at
        // the LRU end (members 2, 3 at the tail, then 1).
        for id in [10u64, 11, 12] {
            c.handle_access(FileId(id));
            c.check_invariants().unwrap();
        }
        assert_eq!(c.len(), 6);
        // One more miss needs one unit, but the tail victim (3) drags its
        // whole still-attached group out with it.
        c.handle_access(FileId(13));
        assert!(
            !c.contains(FileId(1)),
            "group member 1 evicted with its bundle"
        );
        assert!(
            !c.contains(FileId(2)),
            "group member 2 evicted with its bundle"
        );
        assert!(
            !c.contains(FileId(3)),
            "group member 3 evicted with its bundle"
        );
        assert!(c.contains(FileId(13)));
        c.check_invariants().unwrap();
    }

    #[test]
    fn demand_hit_detaches_file_from_its_bundle() {
        let mut c = AggregatingCacheBuilder::new(6)
            .group_size(3)
            .sizes(SizeCostAssigner::uniform())
            .bundle_eviction(true)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in [1u64, 2, 3, 1, 2, 3] {
            c.observe_metadata(FileId(id));
        }
        c.handle_access(FileId(1)); // fetches {1, 2, 3}
        assert!(c.handle_access(FileId(2)).is_hit()); // 2 proves its worth
        for id in [10u64, 11, 12] {
            c.handle_access(FileId(id));
        }
        // Victimising the remaining bundle (3 at the tail, with 1) must
        // not reclaim the detached 2.
        c.handle_access(FileId(13));
        assert!(!c.contains(FileId(1)));
        assert!(!c.contains(FileId(3)));
        assert!(
            c.contains(FileId(2)),
            "a demand hit detaches a file from its bundle"
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn bundle_eviction_requires_sizes() {
        let err = AggregatingCacheBuilder::new(10)
            .bundle_eviction(true)
            .build()
            .unwrap_err();
        assert_eq!(err.parameter(), "bundle_eviction");
    }

    #[test]
    fn sized_invariants_catch_corrupted_unit_ledger() {
        // The PR-1 auditor pattern: corrupt the redundant sized state and
        // prove check_invariants notices.
        let a = SizeCostAssigner::new(SizeDistribution::Pareto, 7);
        let mut c = AggregatingCacheBuilder::new(64)
            .group_size(3)
            .sizes(a)
            .build()
            .unwrap();
        for id in 0..40u64 {
            c.handle_access(FileId(id % 12));
        }
        assert!(c.check_invariants().is_ok());
        c.units_used += 1;
        assert!(
            c.check_invariants().is_err(),
            "unit ledger drift undetected"
        );
        c.units_used -= 1;
        assert!(c.check_invariants().is_ok());
        // Group tags without bundle eviction are a contract violation.
        c.group_of.insert(FileId(0), 1);
        assert!(c.check_invariants().is_err(), "stray group tag undetected");
    }

    #[test]
    fn metadata_footprint_is_bounded() {
        let mut a = AggregatingCacheBuilder::new(16)
            .group_size(4)
            .successor_capacity(3)
            .build()
            .unwrap();
        for i in 0..2000u64 {
            a.handle_access(FileId(i % 100));
        }
        // ≤ 100 files × 3 successors.
        assert!(a.metadata_entries() <= 300);
        assert_eq!(a.successor_table().tracked_files(), 100);
    }
}

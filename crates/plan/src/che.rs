//! The Fagin/Che characteristic-time approximation for LRU.
//!
//! Under the independent reference model a file with request probability
//! `pᵢ` is in an LRU cache of capacity `C` (in steady state) with
//! probability `hᵢ = 1 − e^{−pᵢT}`, where the **characteristic time**
//! `T` is the unique solution of the occupancy fixed point
//!
//! ```text
//!     Σᵢ (1 − e^{−pᵢT}) = C
//! ```
//!
//! (Che, Tung & Wang 2002; the "window size" of Fagin 1977). Both the
//! occupancy and the hit rate `Σᵢ pᵢ·hᵢ` are strictly increasing in
//! `T`, so the forward problem (hit rate at a capacity) and the inverse
//! problem (capacity for a target hit rate) are single bracketed
//! root-finds — no nesting, no derivatives.

use fgcache_types::math::bisect_increasing;
use fgcache_types::ValidationError;

/// How many interval halvings the solvers spend. 80 halvings shrink the
/// initial bracket by 2⁸⁰ — far below f64 spacing for every bracket the
/// doubling phase can produce — so the fixed point is solved to machine
/// precision at O(80·N) exp evaluations.
const BISECT_ITERS: u32 = 80;

/// Validates a popularity vector: non-empty, finite, non-negative and
/// normalized to within 1e-6 (callers normalize derived distributions —
/// e.g. the filter-miss stream — before solving).
fn validate_probs(probs: &[f64]) -> Result<(), ValidationError> {
    if probs.is_empty() {
        return Err(ValidationError::new("probs", "must not be empty"));
    }
    let mut total = 0.0;
    for &p in probs {
        if !p.is_finite() || p < 0.0 {
            return Err(ValidationError::new(
                "probs",
                "probabilities must be finite and non-negative",
            ));
        }
        total += p;
    }
    if (total - 1.0).abs() > 1e-6 {
        return Err(ValidationError::new(
            "probs",
            format!("probabilities must sum to 1 (got {total})"),
        ));
    }
    Ok(())
}

/// Expected steady-state occupancy `Σᵢ (1 − e^{−pᵢt})` at time `t`.
///
/// Uses `exp_m1` so tiny `pᵢt` (the long Zipf tail) keeps full
/// precision instead of cancelling in `1 − (≈1)`.
pub fn occupancy_at_time(probs: &[f64], t: f64) -> f64 {
    probs.iter().map(|&p| -(-p * t).exp_m1()).sum()
}

/// Hit rate `Σᵢ pᵢ·(1 − e^{−pᵢt})` at time `t`.
pub fn hit_rate_at_time(probs: &[f64], t: f64) -> f64 {
    probs.iter().map(|&p| p * -(-p * t).exp_m1()).sum()
}

/// Per-file steady-state hit (= residency) probability at time `t`.
pub fn per_file_hit(p: f64, t: f64) -> f64 {
    if t.is_infinite() && p > 0.0 {
        1.0
    } else {
        -(-p * t).exp_m1()
    }
}

/// A solved Che fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheSolution {
    /// The characteristic time `T` (infinite when every requested file
    /// fits: `capacity ≥` the number of files with `pᵢ > 0`).
    pub characteristic_time: f64,
    /// Steady-state hit rate `Σᵢ pᵢ·(1 − e^{−pᵢT})`.
    pub hit_rate: f64,
}

/// Grows `hi` by doubling from 1.0 until `f(hi) ≥ 0`, returning the
/// bracket top (`f` is non-decreasing and reaches ≥ 0 for the inputs the
/// solvers construct; 1100 doublings overflow any finite crossing).
fn double_until_nonnegative(mut f: impl FnMut(f64) -> f64) -> f64 {
    let mut hi = 1.0_f64;
    for _ in 0..1100 {
        if f(hi) >= 0.0 {
            break;
        }
        hi *= 2.0;
    }
    hi
}

/// Solves the characteristic-time fixed point `occupancy(T) = capacity`.
///
/// Returns `T = ∞` when `capacity` is at least the number of files with
/// positive probability (everything requested fits — the hit rate is the
/// total requested mass).
///
/// # Errors
///
/// Returns a [`ValidationError`] for an invalid popularity vector (see
/// module docs) or a non-positive/non-finite `capacity`.
pub fn characteristic_time(probs: &[f64], capacity: f64) -> Result<f64, ValidationError> {
    validate_probs(probs)?;
    if !capacity.is_finite() || capacity <= 0.0 {
        return Err(ValidationError::new(
            "capacity",
            "must be positive and finite",
        ));
    }
    let reachable = probs.iter().filter(|&&p| p > 0.0).count() as f64;
    if capacity >= reachable {
        return Ok(f64::INFINITY);
    }
    let hi = double_until_nonnegative(|t| occupancy_at_time(probs, t) - capacity);
    Ok(bisect_increasing(
        |t| occupancy_at_time(probs, t) - capacity,
        0.0,
        hi,
        BISECT_ITERS,
    ))
}

/// Solves the fixed point and evaluates the hit rate — the forward
/// planner query ("what does a cache of this size achieve?").
///
/// # Errors
///
/// Propagates [`characteristic_time`] validation.
pub fn solve(probs: &[f64], capacity: f64) -> Result<CheSolution, ValidationError> {
    let t = characteristic_time(probs, capacity)?;
    let hit_rate = if t.is_infinite() {
        probs.iter().sum()
    } else {
        hit_rate_at_time(probs, t)
    };
    Ok(CheSolution {
        characteristic_time: t,
        hit_rate,
    })
}

/// The inverse planner query: the (fractional) LRU capacity achieving
/// `target` hit rate, via one bracketed root-find on `T` (the hit rate
/// is increasing in `T`, and the capacity is read off the occupancy at
/// the solved `T`). Callers round up to whole files.
///
/// # Errors
///
/// Returns a [`ValidationError`] for an invalid popularity vector or a
/// target outside `(0, 1)` — a hit rate of 1.0 is only approached
/// asymptotically, so it is rejected rather than answered with the whole
/// universe.
pub fn capacity_for_hit_rate(probs: &[f64], target: f64) -> Result<f64, ValidationError> {
    validate_probs(probs)?;
    if !target.is_finite() || target <= 0.0 || target >= 1.0 {
        return Err(ValidationError::new(
            "target_hit_rate",
            "must lie strictly between 0 and 1",
        ));
    }
    let hi = double_until_nonnegative(|t| hit_rate_at_time(probs, t) - target);
    let t = bisect_increasing(
        |t| hit_rate_at_time(probs, t) - target,
        0.0,
        hi,
        BISECT_ITERS,
    );
    Ok(occupancy_at_time(probs, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::zipf_popularities;

    #[test]
    fn rejects_bad_inputs() {
        assert!(characteristic_time(&[], 1.0).is_err());
        assert!(characteristic_time(&[0.5, 0.6], 1.0).is_err()); // Σ ≠ 1
        assert!(characteristic_time(&[1.5, -0.5], 1.0).is_err());
        assert!(characteristic_time(&[f64::NAN, 1.0], 1.0).is_err());
        let p = zipf_popularities(10, 0.8).unwrap();
        assert!(characteristic_time(&p, 0.0).is_err());
        assert!(characteristic_time(&p, f64::INFINITY).is_err());
        assert!(capacity_for_hit_rate(&p, 0.0).is_err());
        assert!(capacity_for_hit_rate(&p, 1.0).is_err());
    }

    #[test]
    fn occupancy_fixed_point_holds() {
        let p = zipf_popularities(1000, 0.9).unwrap();
        for capacity in [10.0, 100.0, 500.0] {
            let t = characteristic_time(&p, capacity).unwrap();
            let occ = occupancy_at_time(&p, t);
            assert!(
                (occ - capacity).abs() < 1e-9,
                "C={capacity}: occupancy at T is {occ}"
            );
        }
    }

    #[test]
    fn everything_fits_is_a_sure_hit() {
        let p = zipf_popularities(50, 1.1).unwrap();
        let s = solve(&p, 50.0).unwrap();
        assert!(s.characteristic_time.is_infinite());
        assert!((s.hit_rate - 1.0).abs() < 1e-9);
        assert_eq!(per_file_hit(p[0], f64::INFINITY), 1.0);
    }

    #[test]
    fn hit_rate_increases_with_capacity() {
        let p = zipf_popularities(2000, 0.8).unwrap();
        let hits: Vec<f64> = [20.0, 80.0, 320.0, 1280.0]
            .iter()
            .map(|&c| solve(&p, c).unwrap().hit_rate)
            .collect();
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "{hits:?}");
        // A cache holding 64% of a mildly skewed universe does well.
        assert!(hits[3] > 0.64 && hits[3] < 1.0);
    }

    #[test]
    fn uniform_popularity_hit_rate_is_fill_fraction() {
        // α = 0: every file equally likely. The Che prediction must
        // reduce to hit ≈ C/N (residency is uniform too).
        let p = zipf_popularities(400, 0.0).unwrap();
        let s = solve(&p, 100.0).unwrap();
        assert!(
            (s.hit_rate - 0.25).abs() < 1e-6,
            "uniform hit {}",
            s.hit_rate
        );
    }

    #[test]
    fn inversion_round_trips() {
        let p = zipf_popularities(5000, 1.0).unwrap();
        for target in [0.3, 0.6, 0.9] {
            let c = capacity_for_hit_rate(&p, target).unwrap();
            let achieved = solve(&p, c).unwrap().hit_rate;
            assert!(
                (achieved - target).abs() < 1e-9,
                "target {target}: capacity {c} achieves {achieved}"
            );
        }
    }

    #[test]
    fn zero_probability_files_are_ignored() {
        // Two dead files: reachable universe is 3, so capacity 3 fits all.
        let p = [0.5, 0.3, 0.2, 0.0, 0.0];
        let s = solve(&p, 3.0).unwrap();
        assert!(s.characteristic_time.is_infinite());
        assert!((s.hit_rate - 1.0).abs() < 1e-12);
    }
}

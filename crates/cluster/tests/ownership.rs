//! Ownership-math coverage (satellite S3): pinned golden assignments for
//! the rendezvous hash, the bounded-key-movement guarantees, and the
//! composition of owner-routing with the cache's own shard-routing.

use fgcache_cluster::{ownership_weight, NodeId, OwnershipRing};
use fgcache_core::ShardedAggregatingCacheBuilder;
use fgcache_types::hash::mix64;
use fgcache_types::FileId;

fn ring(ids: &[u64]) -> OwnershipRing {
    OwnershipRing::new(ids.iter().map(|&i| NodeId(i)))
}

/// The assignment function is part of the cluster's wire contract: every
/// node must compute identical owners from identical member lists, across
/// versions. Pin exact values so an accidental change to the weight
/// function (or to `mix64`) cannot slip in silently.
#[test]
fn golden_weights_are_pinned() {
    assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF, "mix64 itself is pinned");
    assert_eq!(
        ownership_weight(NodeId(0), FileId(0)),
        mix64(mix64(0)),
        "weight is the documented two-round mix"
    );
    assert_eq!(ownership_weight(NodeId(1), FileId(2)), mix64(mix64(1) ^ 2));
    // Concrete values, computed once and frozen.
    assert_eq!(
        ownership_weight(NodeId(1), FileId(2)),
        0xBCD9_DBB4_9673_066B
    );
    assert_eq!(
        ownership_weight(NodeId(7), FileId(42)),
        0x6EAB_8625_DF26_8FBC
    );
}

#[test]
fn golden_assignments_are_pinned() {
    let r = ring(&[1, 2, 3, 4, 5]);
    let owners: Vec<u64> = (0..16u64)
        .map(|f| r.owner(FileId(f)).expect("non-empty").as_u64())
        .collect();
    assert_eq!(owners, GOLDEN_OWNERS_5NODES);
}

/// Frozen owner-per-file table for files 0..16 over nodes {1..5}.
const GOLDEN_OWNERS_5NODES: [u64; 16] = [5, 3, 1, 3, 5, 4, 2, 3, 2, 4, 2, 4, 4, 1, 2, 1];

/// Removing one node moves exactly that node's keys: every file the
/// departed node did not own keeps its owner. This is the rendezvous
/// hash's defining property, checked exhaustively over a large key space
/// and every possible departure.
#[test]
fn leave_moves_exactly_the_departed_nodes_keys() {
    let members: Vec<u64> = (1..=10).collect();
    let full = ring(&members);
    for &departing in &members {
        let reduced = OwnershipRing::new(
            members
                .iter()
                .filter(|&&m| m != departing)
                .map(|&m| NodeId(m)),
        );
        let mut moved = 0u64;
        for f in 0..20_000u64 {
            let before = full.owner(FileId(f)).expect("non-empty");
            let after = reduced.owner(FileId(f)).expect("non-empty");
            if before == after {
                continue;
            }
            moved += 1;
            assert_eq!(
                before,
                NodeId(departing),
                "file {f} moved although node {departing} still holds its max weight"
            );
        }
        // The departed node owned ~1/10th of the keys; all of them (and
        // only them) moved.
        assert!(moved > 0, "node {departing} owned nothing out of 20k keys");
    }
}

/// A join moves an expected 1/(n+1) of the keys — the new node claims
/// exactly the keys it now holds the maximum weight for. Bound the moved
/// fraction well away from the 1/n-per-node reshuffle a naive hash-mod
/// scheme would cause.
#[test]
fn join_moves_a_bounded_fraction() {
    let keys = 50_000u64;
    let before = ring(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    let after = ring(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    let mut moved = 0u64;
    for f in 0..keys {
        let old = before.owner(FileId(f)).expect("non-empty");
        let new = after.owner(FileId(f)).expect("non-empty");
        if old != new {
            // Every moved key must have moved TO the joiner.
            assert_eq!(new, NodeId(10), "file {f} moved between old members");
            moved += 1;
        }
    }
    let fraction = moved as f64 / keys as f64;
    // Expected 1/10 = 0.1; allow generous sampling noise but stay far
    // from a full reshuffle.
    assert!(
        (0.05..0.2).contains(&fraction),
        "join moved fraction {fraction}, expected ≈0.1"
    );
}

/// Owner-routing and shard-routing compose independently: the shard a
/// file lands in inside the owner's cache depends only on the file and
/// the shard count, never on cluster membership. So membership changes
/// can't silently re-shard a node's cache, and a fetch routed
/// entry → owner → shard is reproducible from (view, file) alone.
#[test]
fn owner_route_and_shard_route_compose_independently() {
    let cache = ShardedAggregatingCacheBuilder::new(400)
        .shards(8)
        .build()
        .expect("valid config");
    let small = ring(&[1, 2, 3]);
    let large = ring(&[1, 2, 3, 4, 5, 6, 7]);
    for f in 0..2_000u64 {
        let file = FileId(f);
        let shard_under_small = cache.shard_of(file);
        // Membership is invisible to shard routing...
        let _ = small.owner(file);
        let _ = large.owner(file);
        assert_eq!(cache.shard_of(file), shard_under_small);
        // ...and shard routing is a pure function of the file.
        assert_eq!(cache.shard_of(file), cache.shard_of(file));
        // Ownership may differ between the rings, but each ring's choice
        // is a member of that ring.
        assert!(small.contains(small.owner(file).expect("non-empty")));
        assert!(large.contains(large.owner(file).expect("non-empty")));
    }
}

/// Ties in the weight comparison resolve to the larger node id, making
/// ownership total even for pathological id sets.
#[test]
fn ownership_is_total_and_tie_stable() {
    // Duplicated ids collapse; a singleton ring after dedup.
    let r = ring(&[5, 5, 5]);
    assert_eq!(r.len(), 1);
    assert_eq!(r.owner(FileId(123)), Some(NodeId(5)));
}

//! `fgcache entropy` — successor-entropy analysis (figures 7/8).

use std::error::Error;

use fgcache_entropy::{analyze, entropy_profile, filtered_entropy_profile};
use fgcache_trace::Trace;

use crate::args::Args;
use crate::commands::load_trace;

pub(crate) fn report(
    trace: &Trace,
    max_k: usize,
    filter: Option<usize>,
) -> Result<String, Box<dyn Error>> {
    let ks: Vec<usize> = (1..=max_k.max(1)).collect();
    let mut out = String::new();
    let files = trace.file_sequence();
    let profile = match filter {
        Some(capacity) => {
            out.push_str(&format!(
                "successor entropy of the miss stream behind an LRU filter of {capacity} files\n"
            ));
            filtered_entropy_profile(trace, capacity, &ks)?
        }
        None => {
            out.push_str("successor entropy of the raw access stream\n");
            entropy_profile(&files, &ks)?
        }
    };
    out.push_str(" k   bits\n");
    for (k, h) in profile {
        out.push_str(&format!("{k:>2}  {h:5.2}\n"));
    }
    if filter.is_none() {
        let analysis = analyze(&files, 1)?;
        out.push_str(&format!(
            "\nrepeating files {} | singleton files {} | top unpredictable contexts:\n",
            analysis.repeating_files, analysis.singleton_files
        ));
        for e in analysis.per_file.iter().take(5) {
            out.push_str(&format!(
                "  {}  weight {:.3}  H {:.2} bits  ({} successors over {} transitions)\n",
                e.file, e.weight, e.conditional_entropy, e.distinct_successors, e.transitions
            ));
        }
    }
    Ok(out)
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["format", "max-k", "filter"])?;
    let path = args.require_positional(0, "trace")?;
    let trace = load_trace(path, args.flag("format"))?;
    let max_k = args.flag_or("max-k", 8usize)?;
    let filter = match args.flag("filter") {
        Some(raw) => Some(raw.parse().map_err(|_| "invalid --filter")?),
        None => None,
    };
    print!("{}", report(&trace, max_k, filter)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_report_lists_all_k() {
        let trace = Trace::from_files([1, 2, 3].repeat(30));
        let text = report(&trace, 4, None).unwrap();
        assert!(text.contains(" 1   0.00"));
        assert!(text.contains(" 4 "));
        assert!(text.contains("repeating files"));
    }

    #[test]
    fn filtered_report_mentions_filter() {
        let trace = Trace::from_files([1, 2, 3, 4].repeat(30));
        let text = report(&trace, 2, Some(2)).unwrap();
        assert!(text.contains("LRU filter of 2 files"));
    }
}

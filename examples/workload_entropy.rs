//! Workload predictability analysis with successor entropy (paper §4.5).
//!
//! Prints, for each of the four synthetic workloads: basic trace
//! statistics, successor entropy at several successor-sequence lengths
//! (Figure 7), and the entropy of the miss stream behind intervening LRU
//! caches (Figure 8) — showing that moderate-to-large filters make the
//! miss stream *more* predictable, which is why server-side grouping
//! works.
//!
//! Run with: `cargo run --release --example workload_entropy`

use fgcache::entropy::{filtered_entropy, successor_sequence_entropy};
use fgcache::prelude::*;
use fgcache::trace::stats::TraceStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for profile in WorkloadProfile::ALL {
        let trace = SynthConfig::profile(profile)
            .events(60_000)
            .seed(9)
            .build()?
            .generate();
        let stats = TraceStats::compute(&trace);
        println!(
            "== {profile} (imitating DFSTrace host `{}`)",
            profile.dfstrace_host()
        );
        println!("   {}", stats.report());

        let files = trace.file_sequence();
        print!("   successor entropy by symbol length:");
        for k in [1usize, 2, 4, 8, 16] {
            print!("  k={k}: {:.2}b", successor_sequence_entropy(&files, k)?);
        }
        println!();

        print!("   filtered entropy (k=1) by client cache:");
        for cap in [10usize, 50, 500] {
            print!("  c={cap}: {:.2}b", filtered_entropy(&trace, cap, 1)?);
        }
        println!("\n");
    }
    println!(
        "lower is more predictable. note how (a) single-file successors (k=1)\n\
         are always the most predictable choice, and (b) entropy behind a\n\
         moderate filter drops below the raw workload's — the filtered miss\n\
         stream exposes orderly first-accesses of fresh working sets."
    );
    Ok(())
}

//! Differential fuzzer for the sharded aggregating cache.
//!
//! Two equivalences are pinned, with `check_invariants()` (the per-shard
//! audits plus the cross-shard partition invariant) after every step:
//!
//! 1. **shards = 1 is bit-identical to `AggregatingCache`** — same
//!    hit/miss outcome on every access, same cache statistics, same
//!    group-fetch statistics, same residency.
//! 2. **shards = N is bit-identical to N independent `AggregatingCache`
//!    partitions** routed by the same hash with the same per-shard
//!    capacity slices — the sharded composition adds concurrency, never
//!    behaviour.
//! 3. **The lock-light fast path is observably invisible** — every
//!    config runs with the fast path enabled *and* disabled, and a
//!    dedicated on-vs-off run pins identical outcomes, statistics and
//!    final per-shard residency order.
//!
//! Everything is seeded. `ci.sh` (via `cargo xtask fuzz`) re-runs this
//! suite over a bounded deterministic seed set by exporting
//! `FGCACHE_FUZZ_SEEDS=<comma-separated u64s>`; without it the built-in
//! seeds run.

use fgcache_cache::Cache;
use fgcache_core::sharded::partition_capacities;
use fgcache_core::{
    AggregatingCache, AggregatingCacheBuilder, InsertionPolicy, MetadataSource,
    ShardedAggregatingCacheBuilder,
};
use fgcache_types::rng::RandomSource;
use fgcache_types::sizing::SizeCostAssigner;
use fgcache_types::{FileId, SeededRng};

const BUILTIN_SEEDS: [u64; 2] = [0xFEED_FACE, 0xBADC_0FFE];
const OPS: usize = 1_500;

/// The seed set: `FGCACHE_FUZZ_SEEDS` (comma-separated u64s, decimal or
/// `0x`-prefixed hex) when set, the built-in pair otherwise.
fn seeds() -> Vec<u64> {
    match std::env::var("FGCACHE_FUZZ_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.strip_prefix("0x")
                    .map(|hex| u64::from_str_radix(hex, 16))
                    .unwrap_or_else(|| s.parse())
                    .unwrap_or_else(|e| panic!("FGCACHE_FUZZ_SEEDS entry {s:?}: {e}"))
            })
            .collect(),
        Err(_) => BUILTIN_SEEDS.to_vec(),
    }
}

struct Config {
    capacity: usize,
    shards: usize,
    group_size: usize,
    insertion: InsertionPolicy,
}

const CONFIGS: [Config; 6] = [
    // shards = 1: the bit-identity baseline, tiny and roomy.
    Config {
        capacity: 6,
        shards: 1,
        group_size: 3,
        insertion: InsertionPolicy::Tail,
    },
    Config {
        capacity: 48,
        shards: 1,
        group_size: 5,
        insertion: InsertionPolicy::Head,
    },
    // shards > 1: partition equivalence, including a non-even split.
    Config {
        capacity: 16,
        shards: 2,
        group_size: 3,
        insertion: InsertionPolicy::Tail,
    },
    Config {
        capacity: 27, // 7/7/7/6 split: exercises the remainder path
        shards: 4,
        group_size: 4,
        insertion: InsertionPolicy::Tail,
    },
    Config {
        capacity: 40,
        shards: 4,
        group_size: 5,
        insertion: InsertionPolicy::Head,
    },
    Config {
        capacity: 64,
        shards: 8,
        group_size: 3,
        insertion: InsertionPolicy::Tail,
    },
];

fn reference_partitions(cfg: &Config) -> Vec<AggregatingCache> {
    partition_capacities(cfg.capacity, cfg.shards)
        .into_iter()
        .map(|slice| {
            AggregatingCacheBuilder::new(slice)
                .group_size(cfg.group_size)
                .insertion_policy(cfg.insertion)
                .metadata_source(MetadataSource::Requests)
                .build()
                .expect("reference partition config must be valid")
        })
        .collect()
}

/// Runs one config for `ops` seeded operations against the reference
/// composition, comparing outcome, residency, aggregate stats and
/// invariants after every step.
fn fuzz_sharded(cfg: &Config, ops: usize, seed: u64, fast_path: bool) {
    let sharded = ShardedAggregatingCacheBuilder::new(cfg.capacity)
        .shards(cfg.shards)
        .group_size(cfg.group_size)
        .insertion_policy(cfg.insertion)
        .fast_path(fast_path)
        .build()
        .expect("fuzz config must be valid");
    let mut reference = reference_partitions(cfg);
    let mut rng = SeededRng::new(seed);
    let universe = (cfg.capacity as u64) * 3 + 8;
    for step in 0..ops {
        let f = FileId(rng.gen_range_inclusive(0, universe));
        let ctx = |what: &str| {
            format!(
                "capacity {} shards {} g {} {} fast_path {fast_path} seed {seed} step {step} file {f}: {what}",
                cfg.capacity, cfg.shards, cfg.group_size, cfg.insertion
            )
        };
        let owner = sharded.shard_of(f);
        if rng.chance(0.9) {
            let got = sharded.handle_access(f);
            let want = reference[owner].handle_access(f);
            assert_eq!(want, got, "{}", ctx("hit/miss outcome diverged"));
        } else {
            sharded.observe_metadata(f);
            reference[owner].observe_metadata(f);
        }
        let probe = FileId(rng.gen_range_inclusive(0, universe));
        assert_eq!(
            reference[sharded.shard_of(probe)].contains(probe),
            sharded.contains(probe),
            "{}",
            ctx("membership diverged")
        );
        sharded
            .check_invariants()
            .unwrap_or_else(|v| panic!("{}", ctx(&v.to_string())));
    }
    // Aggregate statistics must equal the sum over reference partitions.
    let mut accesses = 0;
    let mut hits = 0;
    let mut fetches = 0;
    let mut transferred = 0;
    let mut len = 0;
    for part in &reference {
        accesses += part.stats().accesses;
        hits += part.stats().hits;
        fetches += part.group_stats().demand_fetches;
        transferred += part.group_stats().files_transferred;
        len += part.len();
    }
    let stats = sharded.stats();
    assert_eq!(stats.accesses, accesses, "aggregate accesses diverged");
    assert_eq!(stats.hits, hits, "aggregate hits diverged");
    assert_eq!(
        sharded.group_stats().demand_fetches,
        fetches,
        "aggregate demand fetches diverged"
    );
    assert_eq!(
        sharded.group_stats().files_transferred,
        transferred,
        "aggregate files transferred diverged"
    );
    assert_eq!(sharded.len(), len, "aggregate residency diverged");
}

#[test]
fn sharded_matches_partitioned_reference() {
    for seed in seeds() {
        for cfg in &CONFIGS {
            for fast_path in [false, true] {
                fuzz_sharded(cfg, OPS, seed, fast_path);
            }
        }
    }
}

/// The shards = 1 identity holds against the *monolithic* cache too, not
/// just a one-element partition vector: same outcome sequence, same
/// stats, same MRU→LRU residency order after every step.
#[test]
fn single_shard_is_bit_identical_to_monolith() {
    for seed in seeds() {
        for fast_path in [false, true] {
            for (capacity, g, insertion) in [
                (2, 2, InsertionPolicy::Head),
                (3, 3, InsertionPolicy::Head),
                (10, 4, InsertionPolicy::Tail),
                (32, 5, InsertionPolicy::Tail),
            ] {
                let sharded = ShardedAggregatingCacheBuilder::new(capacity)
                    .shards(1)
                    .group_size(g)
                    .insertion_policy(insertion)
                    .fast_path(fast_path)
                    .build()
                    .expect("valid config");
                let mut mono = AggregatingCacheBuilder::new(capacity)
                    .group_size(g)
                    .insertion_policy(insertion)
                    .build()
                    .expect("valid config");
                let mut rng = SeededRng::new(seed);
                let universe = (capacity as u64) * 3 + 8;
                for step in 0..OPS {
                    let f = FileId(rng.gen_range_inclusive(0, universe));
                    let got = sharded.handle_access(f);
                    let want = mono.handle_access(f);
                    assert_eq!(
                        want, got,
                        "capacity {capacity} g {g} fast_path {fast_path} seed {seed} step {step} file {f}: diverged"
                    );
                    let order: Vec<FileId> = sharded.with_shard_of(f, |s| s.residents().collect());
                    let mono_order: Vec<FileId> = mono.residents().collect();
                    assert_eq!(
                        mono_order, order,
                        "residency order diverged at step {step} (fast_path {fast_path})"
                    );
                    sharded.check_invariants().expect("sharded invariants");
                    mono.check_invariants().expect("monolith invariants");
                }
                assert_eq!(mono.stats(), &sharded.stats(), "stats diverged");
                assert_eq!(
                    mono.group_stats(),
                    &sharded.group_stats(),
                    "group stats diverged"
                );
            }
        }
    }
}

/// The uniform size/cost assigner is observably invisible: a sharded
/// cache built with `.sizes(SizeCostAssigner::uniform())` — the
/// Landlord-capable sized code path, where admission, eviction and the
/// transfer ledger all run in size units — replays bit-identically to
/// the fixed-cost path on every config: same per-access outcomes, same
/// statistics, same per-shard MRU→LRU residency order after every step.
#[test]
fn uniform_sized_path_is_bit_identical_to_fixed_cost_path() {
    for seed in seeds() {
        for cfg in &CONFIGS {
            for fast_path in [false, true] {
                let legacy = ShardedAggregatingCacheBuilder::new(cfg.capacity)
                    .shards(cfg.shards)
                    .group_size(cfg.group_size)
                    .insertion_policy(cfg.insertion)
                    .fast_path(fast_path)
                    .build()
                    .expect("fuzz config must be valid");
                let sized = ShardedAggregatingCacheBuilder::new(cfg.capacity)
                    .shards(cfg.shards)
                    .group_size(cfg.group_size)
                    .insertion_policy(cfg.insertion)
                    .fast_path(fast_path)
                    .sizes(SizeCostAssigner::uniform())
                    .build()
                    .expect("fuzz config must be valid");
                let mut rng = SeededRng::new(seed);
                let universe = (cfg.capacity as u64) * 3 + 8;
                for step in 0..OPS {
                    let f = FileId(rng.gen_range_inclusive(0, universe));
                    let ctx = |what: &str| {
                        format!(
                            "capacity {} shards {} g {} fast_path {fast_path} seed {seed} \
                             step {step} file {f}: {what}",
                            cfg.capacity, cfg.shards, cfg.group_size
                        )
                    };
                    if rng.chance(0.9) {
                        assert_eq!(
                            legacy.handle_access(f),
                            sized.handle_access(f),
                            "{}",
                            ctx("hit/miss outcome diverged")
                        );
                    } else {
                        legacy.observe_metadata(f);
                        sized.observe_metadata(f);
                    }
                    let order_legacy: Vec<FileId> =
                        legacy.with_shard_of(f, |s| s.residents().collect());
                    let order_sized: Vec<FileId> =
                        sized.with_shard_of(f, |s| s.residents().collect());
                    assert_eq!(
                        order_legacy,
                        order_sized,
                        "{}",
                        ctx("residency order diverged")
                    );
                    sized
                        .check_invariants()
                        .unwrap_or_else(|v| panic!("{}", ctx(&v.to_string())));
                }
                assert_eq!(
                    legacy.stats(),
                    sized.stats(),
                    "stats diverged (seed {seed})"
                );
                let lg = legacy.group_stats();
                let sg = sized.group_stats();
                assert_eq!(lg.demand_fetches, sg.demand_fetches);
                assert_eq!(lg.files_transferred, sg.files_transferred);
                assert_eq!(lg.members_already_resident, sg.members_already_resident);
                assert_eq!(
                    sg.size_units_transferred, sg.files_transferred,
                    "uniform files are one unit each"
                );
            }
        }
    }
}

/// The fast path is observably invisible: for every seed and config, a
/// fast-path run and a locked-only run see the same per-access outcomes
/// and end in the same statistics and the same per-shard MRU→LRU
/// residency order.
#[test]
fn fast_path_on_equals_fast_path_off() {
    for seed in seeds() {
        for cfg in &CONFIGS {
            let build = |fast: bool| {
                ShardedAggregatingCacheBuilder::new(cfg.capacity)
                    .shards(cfg.shards)
                    .group_size(cfg.group_size)
                    .insertion_policy(cfg.insertion)
                    .fast_path(fast)
                    .build()
                    .expect("fuzz config must be valid")
            };
            let on = build(true);
            let off = build(false);
            let mut rng = SeededRng::new(seed);
            let universe = (cfg.capacity as u64) * 3 + 8;
            for step in 0..OPS {
                let f = FileId(rng.gen_range_inclusive(0, universe));
                if rng.chance(0.9) {
                    assert_eq!(
                        on.handle_access(f),
                        off.handle_access(f),
                        "outcome diverged at step {step} (capacity {} shards {} seed {seed})",
                        cfg.capacity,
                        cfg.shards
                    );
                } else {
                    on.observe_metadata(f);
                    off.observe_metadata(f);
                }
            }
            assert_eq!(on.stats(), off.stats(), "stats diverged (seed {seed})");
            assert_eq!(
                on.group_stats(),
                off.group_stats(),
                "group stats diverged (seed {seed})"
            );
            assert_eq!(on.metadata_entries(), off.metadata_entries());
            // Compare per-shard residency order via a probe file per shard.
            for id in 0..universe {
                let f = FileId(id);
                let order_on: Vec<FileId> = on.with_shard_of(f, |s| s.residents().collect());
                let order_off: Vec<FileId> = off.with_shard_of(f, |s| s.residents().collect());
                assert_eq!(
                    order_on, order_off,
                    "residency order diverged on shard of {f} (seed {seed})"
                );
            }
            on.check_invariants().expect("fast-path invariants");
            off.check_invariants().expect("locked-path invariants");
        }
    }
}

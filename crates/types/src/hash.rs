//! A fast, deterministic `BuildHasher` for the workspace's hot maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose
//! HashDoS resistance costs ~2× per probe on small integer keys. Every
//! hot map in this workspace is keyed by [`FileId`](crate::FileId) —
//! trusted 64-bit identifiers from traces we generate ourselves — so
//! the defence buys nothing on the cache hit path. [`SplitMix64Hasher`]
//! instead runs the SplitMix64 finalizer (Steele, Lea & Flood,
//! OOPSLA 2014): a xor-shift-multiply chain with full avalanche, the
//! same mixer `rng::SplitMix64` and the shard router already use.
//!
//! The hasher is deterministic (no per-process random seed), which the
//! differential fuzzers rely on: two maps fed the same operations hash
//! identically in every run. Nothing in the workspace observes map
//! iteration order, so determinism here cannot leak into results.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Applies the SplitMix64 finalizer: a bijective mix of one `u64` with
/// full avalanche (every input bit flips each output bit with p≈0.5).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Hasher`] that folds input words through [`mix64`].
///
/// Integer keys take the one-shot path: `write_u64`/`write_usize` mix
/// the value directly, so hashing a `FileId` is a handful of ALU ops.
/// Byte-slice input is folded 8 bytes at a time through the same mixer.
#[derive(Debug, Default, Clone)]
pub struct SplitMix64Hasher {
    state: u64,
}

impl Hasher for SplitMix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" hash differently.
            self.write_u64(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = mix64(self.state ^ n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }
}

/// The deterministic `BuildHasher` for SplitMix64-hashed collections.
pub type BuildSplitMix64 = BuildHasherDefault<SplitMix64Hasher>;

/// A `HashMap` using [`SplitMix64Hasher`] — the workspace's hot-map type.
pub type FastMap<K, V> = HashMap<K, V, BuildSplitMix64>;

/// A `HashSet` using [`SplitMix64Hasher`].
pub type FastSet<T> = HashSet<T, BuildSplitMix64>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileId;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        BuildSplitMix64::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        for id in [0u64, 1, 42, u64::MAX, 1 << 48] {
            assert_eq!(hash_of(&FileId(id)), hash_of(&FileId(id)));
        }
    }

    #[test]
    fn distinct_small_keys_spread() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..4096u64 {
            assert!(seen.insert(hash_of(&id)), "collision at {id}");
        }
    }

    #[test]
    fn byte_slices_respect_length() {
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn fast_map_round_trips() {
        let mut map: FastMap<FileId, u64> = FastMap::default();
        for id in 0..1000u64 {
            map.insert(FileId(id), id * 3);
        }
        for id in 0..1000u64 {
            assert_eq!(map.get(&FileId(id)), Some(&(id * 3)));
        }
    }

    #[test]
    fn mix64_matches_rng_stream_step() {
        // mix64(x) must equal one SplitMix64 draw seeded at x, so the
        // hasher, the rng bootstrap, and the shard router agree on the
        // same mixer.
        use crate::rng::{RandomSource, SplitMix64};
        for seed in [0u64, 7, 0xDEAD_BEEF, u64::MAX - 3] {
            assert_eq!(mix64(seed), SplitMix64::new(seed).next_u64());
        }
    }
}

//! Minimal hand-rolled JSON tree, emitter and parser.
//!
//! The workspace is hermetic (std-only), so the JSON trace format in
//! `fgcache-trace` and the report emitter in `fgcache-sim` use this module
//! instead of `serde_json`. It implements the subset of RFC 8259 the
//! workspace needs — which is all of the grammar, with two deliberate
//! simplifications:
//!
//! * integers are kept exact (`u64`/`i64` variants) rather than coerced to
//!   `f64`, because [`crate::FileId`] spans the full `u64` range;
//! * object keys keep insertion order (a `Vec`, not a map), so emitted
//!   documents are byte-stable.
//!
//! # Examples
//!
//! ```
//! use fgcache_types::json::Json;
//!
//! let doc = Json::Obj(vec![
//!     ("name".to_string(), Json::Str("fgcache".to_string())),
//!     ("files".to_string(), Json::Arr(vec![Json::UInt(42)])),
//! ]);
//! let text = doc.to_text();
//! assert_eq!(text, r#"{"name":"fgcache","files":[42]}"#);
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt;

/// A parsed JSON value with exact integer preservation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The JSON literal `null`.
    Null,
    /// A JSON boolean.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    UInt(u64),
    /// A negative integer without fraction or exponent.
    Int(i64),
    /// Any other number (fractional or exponent form).
    Num(f64),
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON array.
    Arr(Vec<Json>),
    /// A JSON object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting depth [`Json::parse`] accepts.
///
/// The parser recurses one Rust stack frame per container level, so a
/// hostile document — ten thousand opening brackets — would otherwise
/// chew through the real stack before failing. The depth counter turns
/// that into a clean [`JsonParseError`] after 128 levels, far beyond
/// anything the workspace's formats nest (trace documents use 3).
pub const MAX_DEPTH: usize = 128;

/// Error produced when [`Json::parse`] rejects malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset in the input at which parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K, I>(pairs: I) -> Json
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Json {
        Json::Str(s.as_ref().to_string())
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Serialises the value to compact JSON text (no whitespace).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact JSON serialisation of `self` to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let mut buf = [0u8; 20];
                out.push_str(format_u64(*v, &mut buf));
            }
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json's
                    // arbitrary-precision mode would reject — we degrade.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document. Trailing whitespace is allowed;
    /// trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }
}

/// Formats `v` into `buf` without heap allocation; returns the text.
fn format_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    std::str::from_utf8(&buf[i..]).unwrap_or("0")
}

/// Writes `s` as a quoted JSON string with all mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, text: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    /// Bumps the container depth, rejecting documents nested deeper than
    /// [`MAX_DEPTH`]. Callers pair it with a decrement on their success
    /// paths; an error aborts the whole parse, so unwinding is moot.
    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_code_unit()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.parse_code_unit()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => {
                                    out.push(c);
                                    // parse_code_unit left pos on the last
                                    // hex digit's successor already.
                                    continue;
                                }
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8: the lead byte encodes the sequence
                    // length, and the input is a &str so the span is a
                    // valid char boundary. Validating only this span (not
                    // the whole tail) keeps parsing linear.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.error("unterminated string")),
                    }
                }
            }
        }
    }

    /// Parses exactly four hex digits following `\u`; leaves `pos` just
    /// past the last digit.
    fn parse_code_unit(&mut self) -> Result<u32, JsonParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("expected four hex digits after \\u")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Slice boundaries are on ASCII bytes, so this cannot fail.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", r#""hi""#] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_text(), text);
        }
    }

    #[test]
    fn integers_stay_exact() {
        let max = u64::MAX.to_string();
        assert_eq!(Json::parse(&max).unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse(&max).unwrap().to_text(), max);
        assert_eq!(Json::parse("-9").unwrap(), Json::Int(-9));
    }

    #[test]
    fn nested_structure_roundtrips() {
        let text = r#"{"events":[{"seq":0,"file":18446744073709551615,"kind":"Read"}],"n":2}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_text(), text);
        let events = v.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(events[0].get("file").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(events[0].get("kind").and_then(Json::as_str), Some("Read"));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.to_text(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("a\"b\\c\nd\te\u{08}\u{0C}\r\u{1}\u{1F602}".to_string());
        let text = original.to_text();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud83d\ude02""#).unwrap();
        assert_eq!(v, Json::Str("\u{1F602}".to_string()));
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "01x",
            "{\"a\"}",
            "[1] junk",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nan",
            "+1",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn parse_error_reports_offset() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn nesting_depth_is_limited() {
        // Hostile inputs: huge bracket runs must fail cleanly, not blow
        // the stack. Both pure arrays and alternating object nesting.
        let deep_arrays = "[".repeat(100_000);
        let err = Json::parse(&deep_arrays).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // The offending '[' sits at byte index MAX_DEPTH and is consumed
        // before the depth check fires, so the error points just past it.
        assert_eq!(err.offset, MAX_DEPTH + 1, "fails at the first too-deep '['");
        let deep_mixed: String = "{\"k\":[".repeat(50_000);
        assert!(Json::parse(&deep_mixed).is_err());
    }

    #[test]
    fn depth_at_the_limit_is_accepted() {
        // Exactly MAX_DEPTH nested arrays parse; one more does not.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn depth_resets_between_siblings() {
        // Depth counts nesting, not total containers: many shallow
        // siblings stay parseable.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn float_emission_is_finite_only() {
        assert_eq!(Json::Num(f64::NAN).to_text(), "null");
        assert_eq!(Json::Num(2.5).to_text(), "2.5");
    }

    #[test]
    fn accessors_on_wrong_variants() {
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Bool(true).as_array(), None);
        assert_eq!(Json::UInt(1).as_str(), None);
        assert_eq!(Json::Str("x".into()).as_u64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Int(5).as_u64(), Some(5));
    }
}

//! Rendezvous-hash ownership: which node owns which file.
//!
//! The ring is a plain sorted member list; ownership of a file is decided
//! by *highest random weight* (Thaler & Ravishankar, 1998): every node
//! computes `weight(node, file) = mix64(mix64(node) ^ file)` and the
//! node with the largest weight owns the file. Because each (node, file)
//! weight is independent of every other node, membership changes move the
//! minimum possible keys:
//!
//! * **leave** — exactly the departed node's keys move (everyone else
//!   still holds the maximum weight they held before);
//! * **join** — only keys for which the new node now holds the maximum
//!   weight move, an expected `1/(n+1)` fraction.
//!
//! No tokens, no ring positions, no replication factor — for the paper's
//! whole-group caches a deterministic pure function of (members, file) is
//! the entire routing table, and it is trivially identical on every node
//! that holds the same member list. [`ClusterView`] pairs that member
//! list with an epoch and the peer addresses, which is what the
//! `ClusterUpdate` wire frame carries.

use fgcache_types::hash::mix64;
use fgcache_types::FileId;

/// A cluster node's identity: an opaque 64-bit id, stable across
/// restarts. Ids are chosen by the operator (or the test harness) and
/// carried verbatim on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The raw 64-bit id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The rendezvous weight of `node` for `file`: two rounds of the
/// SplitMix64 finalizer, so node and file bits are fully mixed before
/// comparison. Public so tests (and the oracle replay) can pin the exact
/// assignment function.
pub fn ownership_weight(node: NodeId, file: FileId) -> u64 {
    mix64(mix64(node.0) ^ file.as_u64())
}

/// An immutable rendezvous-hash ownership ring over a set of nodes.
///
/// Construction sorts and deduplicates the member list, so two rings
/// built from the same members in any order are identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipRing {
    nodes: Vec<NodeId>,
}

impl OwnershipRing {
    /// Builds a ring over `nodes` (order-insensitive; duplicates are
    /// collapsed). An empty ring is allowed and owns nothing.
    pub fn new(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        OwnershipRing { nodes }
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members (then [`owner`](Self::owner)
    /// always returns `None`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sorted member list.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// The owner of `file`: the member with the highest rendezvous
    /// weight (ties — astronomically unlikely with distinct ids — go to
    /// the larger id, so the choice is still total). `None` iff the ring
    /// is empty.
    pub fn owner(&self, file: FileId) -> Option<NodeId> {
        self.nodes
            .iter()
            .copied()
            .max_by_key(|&n| (ownership_weight(n, file), n))
    }
}

/// An epoch'd membership view: the member list plus each member's
/// transport address, exactly what a `ClusterUpdate` frame carries.
///
/// Epochs are totally ordered; a node applies a view only if its epoch
/// exceeds the one it holds, which makes update delivery idempotent and
/// commutative per epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    epoch: u64,
    /// Sorted by node id; one address per member.
    members: Vec<(NodeId, String)>,
}

impl ClusterView {
    /// Builds a view at `epoch` over `members` (order-insensitive; a
    /// duplicated id keeps the last address given).
    pub fn new(epoch: u64, members: impl IntoIterator<Item = (NodeId, String)>) -> Self {
        let mut members: Vec<(NodeId, String)> = members.into_iter().collect();
        members.sort_by_key(|(id, _)| *id);
        // Keep the *last* address for a duplicated id.
        members.reverse();
        members.dedup_by_key(|(id, _)| *id);
        members.reverse();
        ClusterView { epoch, members }
    }

    /// A view from the wire representation (raw u64 ids).
    pub fn from_wire(epoch: u64, members: &[(u64, String)]) -> Self {
        Self::new(
            epoch,
            members.iter().map(|(id, addr)| (NodeId(*id), addr.clone())),
        )
    }

    /// The wire representation (raw u64 ids), for `ClusterUpdate`.
    pub fn to_wire(&self) -> Vec<(u64, String)> {
        self.members
            .iter()
            .map(|(id, addr)| (id.0, addr.clone()))
            .collect()
    }

    /// This view's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The members, sorted by id.
    pub fn members(&self) -> &[(NodeId, String)] {
        &self.members
    }

    /// The transport address of `node`, if it is a member.
    pub fn addr_of(&self, node: NodeId) -> Option<&str> {
        self.members
            .binary_search_by_key(&node, |(id, _)| *id)
            .ok()
            .map(|i| self.members[i].1.as_str())
    }

    /// The ownership ring over this view's members.
    pub fn ring(&self) -> OwnershipRing {
        OwnershipRing::new(self.members.iter().map(|(id, _)| *id))
    }

    /// The next view after `node` joins (or changes address): epoch + 1,
    /// member added or replaced.
    #[must_use]
    pub fn with_member(&self, node: NodeId, addr: &str) -> ClusterView {
        ClusterView::new(
            self.epoch + 1,
            self.members
                .iter()
                .filter(|(id, _)| *id != node)
                .cloned()
                .chain(std::iter::once((node, addr.to_string()))),
        )
    }

    /// The next view after `node` leaves: epoch + 1, member removed
    /// (removing a non-member still bumps the epoch — the caller asked
    /// for a new view).
    #[must_use]
    pub fn without_member(&self, node: NodeId) -> ClusterView {
        ClusterView::new(
            self.epoch + 1,
            self.members.iter().filter(|(id, _)| *id != node).cloned(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(ids: &[u64]) -> OwnershipRing {
        OwnershipRing::new(ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn ring_is_order_insensitive_and_dedups() {
        assert_eq!(ring(&[3, 1, 2]), ring(&[1, 2, 3, 2]));
        assert_eq!(ring(&[3, 1, 2]).nodes(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let r = ring(&[]);
        assert!(r.is_empty());
        assert_eq!(r.owner(FileId(7)), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let r = ring(&[42]);
        for f in 0..100u64 {
            assert_eq!(r.owner(FileId(f)), Some(NodeId(42)));
        }
    }

    #[test]
    fn owner_is_deterministic_and_a_member() {
        let r = ring(&[1, 2, 3, 4, 5]);
        for f in 0..1000u64 {
            let o = r.owner(FileId(f)).expect("non-empty ring");
            assert!(r.contains(o));
            assert_eq!(r.owner(FileId(f)), Some(o), "owner must be stable");
        }
    }

    #[test]
    fn ownership_spreads_across_members() {
        let r = ring(&[1, 2, 3, 4]);
        let mut counts = [0u64; 5];
        for f in 0..4000u64 {
            counts[r.owner(FileId(f)).expect("non-empty").0 as usize] += 1;
        }
        for (node, &owned) in counts.iter().enumerate().skip(1) {
            // Expected 1000 ± a few σ; a uniform rendezvous hash cannot
            // plausibly starve a node to under half its fair share.
            assert!(
                owned > 500 && owned < 1500,
                "node {node} owns {owned} of 4000"
            );
        }
    }

    #[test]
    fn view_addresses_and_ring_agree() {
        let v = ClusterView::new(
            3,
            [
                (NodeId(2), "b:2".to_string()),
                (NodeId(1), "a:1".to_string()),
            ],
        );
        assert_eq!(v.epoch(), 3);
        assert_eq!(v.addr_of(NodeId(1)), Some("a:1"));
        assert_eq!(v.addr_of(NodeId(2)), Some("b:2"));
        assert_eq!(v.addr_of(NodeId(9)), None);
        assert_eq!(v.ring(), ring(&[1, 2]));
    }

    #[test]
    fn view_join_and_leave_bump_epochs() {
        let v = ClusterView::new(1, [(NodeId(1), "a".to_string())]);
        let joined = v.with_member(NodeId(2), "b");
        assert_eq!(joined.epoch(), 2);
        assert_eq!(joined.ring().len(), 2);
        let left = joined.without_member(NodeId(1));
        assert_eq!(left.epoch(), 3);
        assert_eq!(left.ring().nodes(), &[NodeId(2)]);
    }

    #[test]
    fn with_member_replaces_the_address() {
        let v = ClusterView::new(1, [(NodeId(1), "old".to_string())]);
        let moved = v.with_member(NodeId(1), "new");
        assert_eq!(moved.addr_of(NodeId(1)), Some("new"));
        assert_eq!(moved.members().len(), 1);
    }

    #[test]
    fn wire_roundtrip() {
        let v = ClusterView::new(
            7,
            [(NodeId(4), "d".to_string()), (NodeId(2), "b".to_string())],
        );
        let wire = v.to_wire();
        assert_eq!(wire, vec![(2, "b".to_string()), (4, "d".to_string())]);
        assert_eq!(ClusterView::from_wire(7, &wire), v);
    }
}

//! Malformed-input corpus for the trace readers — the trace-I/O arm of
//! `xtask fuzz`.
//!
//! Two layers:
//!
//! * a **static corpus** of known-bad inputs per format, each of which
//!   must produce a clean `Err` (never a panic) from both the
//!   materialized readers (`io::read_*`) and the streaming readers
//!   ([`TraceReader`]);
//! * a **seeded mutation sweep**: valid traces are serialized, then
//!   truncated at every byte and corrupted by deterministic byte flips.
//!   A mutation may still parse (flipping a digit yields a different but
//!   valid trace), so the invariant is differential: streaming and
//!   materialized readers must agree on Ok-vs-Err — and on the decoded
//!   trace when Ok — and must never panic.
//!
//! Extra seeds arrive via `FGCACHE_FUZZ_SEEDS` (comma-separated integers,
//! `0x`-prefixed hex allowed), the same contract as the other fuzz
//! suites.

use fgcache_trace::stream::{collect_trace, TraceReader};
use fgcache_trace::{io, Trace};
use fgcache_types::rng::RandomSource;
use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeededRng, SeqNo};

/// Built-in seeds; `FGCACHE_FUZZ_SEEDS` adds more.
const DEFAULT_SEEDS: [u64; 3] = [0xFEED_FACE, 42, 20020702];

fn seeds() -> Vec<u64> {
    let mut seeds: Vec<u64> = DEFAULT_SEEDS.to_vec();
    if let Ok(raw) = std::env::var("FGCACHE_FUZZ_SEEDS") {
        for tok in raw.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let parsed = match tok.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => tok.parse(),
            };
            if let Ok(seed) = parsed {
                seeds.push(seed);
            }
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Binary,
}

/// Decodes `bytes` with the materialized reader for `fmt`.
fn read_materialized(fmt: Format, bytes: &[u8]) -> Result<Trace, io::TraceIoError> {
    match fmt {
        Format::Text => io::read_text(bytes),
        Format::Json => io::read_json(bytes),
        Format::Binary => io::read_binary(bytes),
    }
}

/// Decodes `bytes` with the streaming reader for `fmt` (binary gets the
/// true length, the strict path the CLI uses).
fn read_streaming(fmt: Format, bytes: &[u8]) -> Result<Trace, io::TraceIoError> {
    collect_trace(match fmt {
        Format::Text => TraceReader::text(bytes),
        Format::Json => TraceReader::json(bytes),
        Format::Binary => TraceReader::binary_with_len(bytes, bytes.len() as u64),
    })
}

/// The differential invariant: both readers agree on Ok-vs-Err and on
/// the decoded trace; a streaming reader that has yielded its error is
/// fused (no further items).
fn assert_readers_agree(fmt: Format, bytes: &[u8], context: &str) {
    let materialized = read_materialized(fmt, bytes);
    let streamed = read_streaming(fmt, bytes);
    match (&materialized, &streamed) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{context}: decoded traces differ"),
        (Err(_), Err(_)) => {
            let mut reader: Box<dyn Iterator<Item = Result<AccessEvent, io::TraceIoError>>> =
                match fmt {
                    Format::Text => Box::new(TraceReader::text(bytes)),
                    Format::Json => Box::new(TraceReader::json(bytes)),
                    Format::Binary => {
                        Box::new(TraceReader::binary_with_len(bytes, bytes.len() as u64))
                    }
                };
            let mut seen_err = false;
            for item in &mut reader {
                if item.is_err() {
                    seen_err = true;
                    break;
                }
            }
            assert!(seen_err, "{context}: collect failed but stream never erred");
            assert!(
                reader.next().is_none(),
                "{context}: stream not fused after its error"
            );
        }
        _ => panic!(
            "{context}: readers disagree (materialized {:?}, streamed {:?})",
            materialized.map(|t| t.len()),
            streamed.map(|t| t.len())
        ),
    }
}

#[test]
fn static_corpus_is_rejected_cleanly() {
    let text_corpus: &[&[u8]] = &[
        b"0 0",                        // too few fields
        b"0 0 R 1 extra",              // too many fields
        b"0 0 X 1",                    // unknown kind
        b"not a number 0 R 1",         // bad seq
        b"0 4294967296 R 1",           // client beyond u32
        b"18446744073709551616 0 R 1", // seq beyond u64
        b"1 0 R 1\n0 0 R 2",           // out of order
        b"5 0 R 1\n5 0 R 2",           // duplicate seq
        b"\xff\xfe invalid utf8 \x80", // invalid UTF-8
    ];
    let json_corpus: &[&[u8]] = &[
        b"",                                                                   // empty input
        b"{",                                                                  // truncated document
        b"[]",                         // wrong top-level type
        b"{\"events\":}",              // missing value
        b"{\"events\":[}",             // bad array
        b"{\"events\":[{]}",           // bad object
        b"{\"events\":[{\"seq\":0}]}", // missing fields
        b"{\"events\":[{\"seq\":0,\"client\":0,\"file\":1,\"kind\":\"Q\"}]}", // bad kind
        b"{\"events\":[]} trailing garbage", // garbage suffix
        b"{\"noevents\":[]}",          // missing events key
        b"{\"events\":[{\"seq\":0,\"client\":0,\"file\":1,\"kind\":\"Read\"}", // truncated
    ];
    let binary_corpus: &[&[u8]] = &[
        b"",                                         // empty input
        b"FGTRACE",                                  // truncated magic
        b"NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00", // wrong magic
        b"FGTRACE1\x01\x00\x00\x00",                 // truncated count
        b"FGTRACE1\x02\x00\x00\x00\x00\x00\x00\x00", // count 2, no records
        b"FGTRACE1\xff\xff\xff\xff\xff\xff\xff\xff", // forged huge count
        // Count 1, record truncated mid-way.
        b"FGTRACE1\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        // Count 0 followed by trailing bytes.
        b"FGTRACE1\x00\x00\x00\x00\x00\x00\x00\x00junk",
    ];
    for (fmt, corpus) in [
        (Format::Text, text_corpus),
        (Format::Json, json_corpus),
        (Format::Binary, binary_corpus),
    ] {
        for (i, bytes) in corpus.iter().enumerate() {
            assert!(
                read_materialized(fmt, bytes).is_err(),
                "corpus entry {i} unexpectedly parsed"
            );
            assert_readers_agree(fmt, bytes, &format!("static corpus entry {i}"));
        }
    }
}

fn random_trace(rng: &mut SeededRng) -> Trace {
    let n = rng.gen_index(40);
    let events = (0..n)
        .map(|i| {
            AccessEvent::new(
                SeqNo(i as u64),
                ClientId(rng.gen_index(4) as u32),
                FileId(rng.gen_range_inclusive(0, 99)),
                AccessKind::ALL[rng.gen_index(AccessKind::ALL.len())],
            )
        })
        .collect();
    Trace::new(events).expect("consecutive seqs are valid")
}

fn encode(fmt: Format, trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    match fmt {
        Format::Text => io::write_text(trace, &mut buf).expect("write_text"),
        Format::Json => io::write_json(trace, &mut buf).expect("write_json"),
        Format::Binary => io::write_binary(trace, &mut buf).expect("write_binary"),
    }
    buf
}

#[test]
fn truncation_at_every_byte_never_panics_and_readers_agree() {
    for seed in seeds() {
        let mut rng = SeededRng::new(seed);
        for fmt in [Format::Text, Format::Json, Format::Binary] {
            let bytes = encode(fmt, &random_trace(&mut rng));
            for cut in 0..bytes.len() {
                assert_readers_agree(fmt, &bytes[..cut], &format!("seed {seed}, cut {cut}"));
            }
        }
    }
}

#[test]
fn byte_flips_never_panic_and_readers_agree() {
    for seed in seeds() {
        let mut rng = SeededRng::new(seed);
        for fmt in [Format::Text, Format::Json, Format::Binary] {
            let bytes = encode(fmt, &random_trace(&mut rng));
            if bytes.is_empty() {
                continue;
            }
            for round in 0..64 {
                let mut mutated = bytes.clone();
                // 1–3 deterministic flips per round.
                for _ in 0..=rng.gen_index(3) {
                    let pos = rng.gen_index(mutated.len());
                    let bit = 1u8 << rng.gen_index(8);
                    mutated[pos] ^= bit;
                }
                assert_readers_agree(fmt, &mutated, &format!("seed {seed}, round {round}"));
            }
        }
    }
}

//! 2Q cache (Johnson & Shasha, VLDB '94).
//!
//! 2Q guards the main LRU area (`Am`) behind a small FIFO staging area
//! (`A1in`) plus a ghost list of recently-evicted ids (`A1out`): a file is
//! only promoted into `Am` when it is re-referenced *after* leaving
//! `A1in`. This makes 2Q scan-resistant, a property plain LRU lacks — a
//! useful contrast for the paper's server-cache study, where sequential
//! first-touch misses dominate the filtered stream.

use fgcache_types::hash::FastMap;

use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::list::LruList;
use crate::{Cache, CacheStats};

/// A 2Q cache of [`FileId`]s.
///
/// `Kin` (the A1in share) is ¼ of capacity and the A1out ghost remembers
/// ½·capacity ids, the parameters recommended in the original paper.
///
/// ```
/// use fgcache_cache::{Cache, TwoQCache};
/// use fgcache_types::FileId;
///
/// let mut c = TwoQCache::new(8);
/// c.access(FileId(1));            // enters A1in
/// for i in 10..18 { c.access(FileId(i)); } // scan pushes 1 to the ghost
/// c.access(FileId(1));            // ghost hit → promoted to Am on refetch
/// assert!(c.contains(FileId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct TwoQCache {
    capacity: usize,
    kin: usize,
    kout: usize,
    a1in: LruList,
    am: LruList,
    a1out: LruList,
    speculative: FastMap<FileId, bool>,
    stats: CacheStats,
}

impl TwoQCache {
    /// Creates a 2Q cache holding at most `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        TwoQCache {
            capacity,
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: LruList::new(),
            am: LruList::new(),
            a1out: LruList::new(),
            speculative: FastMap::default(),
            stats: CacheStats::new(),
        }
    }

    fn resident(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    /// Frees one resident slot, preferring A1in once it exceeds `Kin`.
    fn reclaim(&mut self) {
        let from_a1in = self.a1in.len() > self.kin || self.am.is_empty();
        if from_a1in {
            if let Some(victim) = self.a1in.pop_back() {
                self.speculative.remove(&victim);
                self.a1out.push_front(victim);
                if self.a1out.len() > self.kout {
                    self.a1out.pop_back();
                }
                self.stats.record_eviction();
            }
        } else if let Some(victim) = self.am.pop_back() {
            self.speculative.remove(&victim);
            self.stats.record_eviction();
        }
    }
}

impl Cache for TwoQCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        if self.am.touch(file) {
            let was_spec = self
                .speculative
                .insert(file, false)
                .expect("Am member tracked");
            self.stats.record_hit(was_spec);
            return AccessOutcome::Hit;
        }
        if self.a1in.contains(file) {
            // 2Q leaves A1in hits in place; promotion happens via A1out.
            let was_spec = self
                .speculative
                .insert(file, false)
                .expect("A1in member tracked");
            self.stats.record_hit(was_spec);
            return AccessOutcome::Hit;
        }
        self.stats.record_miss();
        if self.resident() >= self.capacity {
            self.reclaim();
        }
        if self.a1out.remove(file) {
            self.am.push_front(file);
        } else {
            self.a1in.push_front(file);
        }
        self.speculative.insert(file, false);
        AccessOutcome::Miss
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.speculative.contains_key(&file) {
            return false;
        }
        if self.resident() >= self.capacity {
            self.reclaim();
        }
        // A ghosted id that re-enters speculatively must leave the ghost
        // list: A1out only tracks non-resident files.
        self.a1out.remove(file);
        self.a1in.push_back(file);
        self.speculative.insert(file, true);
        self.stats.record_speculative_insert();
        true
    }

    fn contains(&self, file: FileId) -> bool {
        self.speculative.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.resident()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "2q"
    }

    fn clear(&mut self) {
        self.a1in.clear();
        self.am.clear();
        self.a1out.clear();
        self.speculative.clear();
        self.stats = CacheStats::new();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("TwoQCache", detail));
        self.a1in.audit("TwoQCache.a1in")?;
        self.am.audit("TwoQCache.am")?;
        self.a1out.audit("TwoQCache.a1out")?;
        if self.resident() > self.capacity {
            return err(format!(
                "{} residents exceed capacity {}",
                self.resident(),
                self.capacity
            ));
        }
        if self.a1out.len() > self.kout {
            return err(format!(
                "ghost list holds {} ids, bound is {}",
                self.a1out.len(),
                self.kout
            ));
        }
        if self.speculative.len() != self.resident() {
            return err(format!(
                "speculative map tracks {} files, {} are resident",
                self.speculative.len(),
                self.resident()
            ));
        }
        for &file in self.speculative.keys() {
            let in_a1in = self.a1in.contains(file);
            let in_am = self.am.contains(file);
            if in_a1in == in_am {
                return err(format!(
                    "tracked file {file} must live in exactly one of A1in/Am"
                ));
            }
            if self.a1out.contains(file) {
                return err(format!("resident file {file} also on the ghost list"));
            }
        }
        self.stats.check("TwoQCache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;

    #[test]
    fn conformance() {
        check_cache_conformance(TwoQCache::new);
    }

    #[test]
    fn corrupted_ghost_is_detected() {
        let mut c = TwoQCache::new(4);
        c.access(FileId(1));
        assert!(c.check_invariants().is_ok());
        // A resident file must never sit on the A1out ghost list.
        c.a1out.push_front(FileId(1));
        assert!(c.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = TwoQCache::new(0);
    }

    #[test]
    fn ghost_hit_promotes_to_am() {
        let mut c = TwoQCache::new(4); // kin = 1
        c.access(FileId(1)); // A1in
        c.access(FileId(2)); // pushes 1 out of A1in... only on reclaim
        c.access(FileId(3));
        c.access(FileId(4));
        c.access(FileId(5)); // reclaim: A1in over kin → 1 goes to ghost
        assert!(!c.contains(FileId(1)));
        c.access(FileId(1)); // ghost hit → Am
        assert!(c.am.contains(FileId(1)));
    }

    #[test]
    fn scan_does_not_flush_am() {
        let mut c = TwoQCache::new(8);
        // Promote 1 into Am via the ghost path.
        for i in 0..9 {
            c.access(FileId(100 + i));
        }
        c.access(FileId(100)); // likely ghosted by now; if resident, still fine
                               // Either way, run a long scan and check Am members survive it better
                               // than the scan items themselves do.
        let am_before = c.am.len();
        for i in 0..50 {
            c.access(FileId(1000 + i));
        }
        assert!(c.am.len() >= am_before.min(c.am.len()));
        assert!(c.len() <= 8);
    }

    #[test]
    fn residency_never_exceeds_capacity_under_churn() {
        let mut c = TwoQCache::new(5);
        for i in 0..200u64 {
            c.access(FileId(i % 23));
            assert!(c.len() <= 5);
        }
    }

    #[test]
    fn speculative_enters_a1in_back() {
        let mut c = TwoQCache::new(4);
        c.insert_speculative(FileId(9));
        assert!(c.a1in.contains(FileId(9)));
        assert!(c.access(FileId(9)).is_hit());
        assert_eq!(c.stats().speculative_hits, 1);
    }
}

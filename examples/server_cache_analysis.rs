//! Server-side caching behind an intervening client cache (paper §4.3).
//!
//! Demonstrates the paper's most dramatic result: once the client cache
//! is as large as the server cache, plain LRU/LFU server caches become
//! useless — all locality has been filtered away — while the aggregating
//! cache keeps working because *inter-file relationships* survive
//! filtering. Also shows that stronger single-level policies (2Q, MQ,
//! ARC) cannot close the gap: the problem is information, not policy.
//!
//! Run with: `cargo run --release --example server_cache_analysis`

use fgcache::cache::PolicyKind;
use fgcache::prelude::*;
use fgcache::sim::server::{hit_rate_table, two_level_sweep, ServerScheme, TwoLevelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = SynthConfig::profile(WorkloadProfile::Workstation)
        .events(80_000)
        .seed(11)
        .build()?
        .generate();

    let config = TwoLevelConfig {
        filter_capacities: vec![50, 100, 200, 300, 400, 500],
        server_capacity: 300,
        schemes: vec![
            ServerScheme::Aggregating { group_size: 5 },
            ServerScheme::Policy(PolicyKind::Lru),
            ServerScheme::Policy(PolicyKind::Lfu),
            ServerScheme::Policy(PolicyKind::TwoQ),
            ServerScheme::Policy(PolicyKind::Mq),
            ServerScheme::Policy(PolicyKind::Arc),
        ],
        successor_capacity: 8,
    };
    let points = two_level_sweep(&trace, &config)?;
    println!(
        "{}",
        hit_rate_table(
            "server hit rate vs client filter capacity (server cache = 300 files)",
            &points
        )
    );

    // Narrate the crossover the paper highlights.
    let at = |filter: usize, scheme: &str| {
        points
            .iter()
            .find(|p| p.filter_capacity == filter && p.scheme == scheme)
            .map(|p| p.server_hit_rate)
            .unwrap_or(0.0)
    };
    println!(
        "with a small (50-file) client cache:  lru {:.1}%  vs aggregating {:.1}%",
        at(50, "lru") * 100.0,
        at(50, "g5") * 100.0
    );
    println!(
        "with a large (500-file) client cache: lru {:.1}%  vs aggregating {:.1}%",
        at(500, "lru") * 100.0,
        at(500, "g5") * 100.0
    );
    println!(
        "\nthe aggregating cache keeps a useful hit rate even when the client\n\
         cache is larger than the server cache; replacement-policy upgrades\n\
         (2q/mq/arc) cannot recover the filtered locality."
    );
    Ok(())
}

//! Virtual-cluster replay throughput: N rendezvous-hashed cluster nodes
//! over in-process transports, fed a streamed Zipf workload with
//! mid-replay membership churn.
//!
//! Each scenario measures events/sec through the full routing path
//! (entry node → ring lookup → proxy or local serve) and reports the
//! proxied fraction and load imbalance. Every run doubles as a live
//! correctness check: the fleet's per-node cache stats must be
//! byte-identical to the single-process routing oracle.
//!
//! Flags (after `--`): `--smoke` shrinks the event count for CI,
//! `--json PATH` writes a machine-readable summary.

use fgcache_bench::harness;
use fgcache_sim::{
    oracle_replay, zipf_stream, MembershipChange, MembershipEvent, VirtualCluster,
    VirtualClusterConfig,
};
use std::time::Instant;

const UNIVERSE: usize = 4_000;
const ZIPF_EXPONENT: f64 = 0.85;
const SEED: u64 = 2002;
const FULL_EVENTS: u64 = 400_000;
const SMOKE_EVENTS: u64 = 24_000;

struct Scenario {
    name: String,
    events_per_sec: f64,
    proxied_fraction: f64,
    imbalance: Option<f64>,
}

/// Leave/rejoin churn at 40% and 70% of the replay — the same shape the
/// CLI smoke uses, so the bench exercises epoch application too.
fn churn(nodes: usize, events: u64) -> Vec<MembershipEvent> {
    if nodes < 2 || events < 10 {
        return Vec::new();
    }
    let id = nodes as u64 - 1;
    vec![
        MembershipEvent {
            at_event: events * 2 / 5,
            change: MembershipChange::Leave(id),
        },
        MembershipEvent {
            at_event: events * 7 / 10,
            change: MembershipChange::Join(id),
        },
    ]
}

fn bench_fleet(nodes: usize, events: u64) -> Scenario {
    let config = VirtualClusterConfig {
        nodes,
        node_capacity: 120,
        shards: 2,
        group_size: 4,
        successor_capacity: 4,
    };
    let schedule = churn(nodes, events);
    let stream = || zipf_stream(UNIVERSE, ZIPF_EXPONENT, SEED, events).expect("valid zipf");

    // Replay mutates fleet state, so every timed pass gets a fresh
    // fleet; only the replay itself is on the clock.
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..harness::iterations() + 1 {
        let mut cluster = VirtualCluster::build(&config).expect("valid config");
        let start = Instant::now();
        let report = cluster.replay(stream(), &schedule);
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        last = Some(report);
    }
    let report = last.expect("at least one pass ran");

    // Live byte-identity check against the single-process oracle.
    let oracle = oracle_replay(&config, stream(), &schedule).expect("valid config");
    assert_eq!(
        report.per_node, oracle,
        "{nodes}-node fleet diverged from the routing oracle"
    );
    let proxied: u64 = report.node_stats.iter().map(|s| s.proxied).sum();
    let failures: u64 = report.node_stats.iter().map(|s| s.proxy_failures).sum();
    assert_eq!(failures, 0, "virtual transports cannot fail");

    Scenario {
        name: format!("fleet/{nodes}nodes"),
        events_per_sec: events as f64 / best,
        proxied_fraction: proxied as f64 / events as f64,
        imbalance: report.imbalance,
    }
}

fn write_json(path: &str, events: u64, scenarios: &[Scenario]) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"events\": {events},\n"));
    body.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"events_per_sec\": {:.0}, \"proxied_fraction\": {:.4}, \"imbalance\": {}}}{}\n",
            s.name,
            s.events_per_sec,
            s.proxied_fraction,
            // JSON null when the replay ended with no live members.
            s.imbalance
                .map(|i| format!("{i:.3}"))
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write json summary");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let events = if smoke { SMOKE_EVENTS } else { FULL_EVENTS };

    println!(
        "# cluster: {} events, zipf({}, {}) universe, mid-replay churn",
        events, UNIVERSE, ZIPF_EXPONENT
    );

    let scenarios = vec![
        bench_fleet(4, events),
        bench_fleet(16, events),
        bench_fleet(64, events),
    ];

    for s in &scenarios {
        println!(
            "{:<16} {:>12.0} events/s  proxied {:.4}  imbalance {}",
            s.name,
            s.events_per_sec,
            s.proxied_fraction,
            s.imbalance
                .map(|i| format!("{i:.3}"))
                .unwrap_or_else(|| "\u{2014}".to_string())
        );
    }

    if let Some(path) = json_path {
        write_json(&path, events, &scenarios);
        println!("# wrote {path}");
    }
}

//! Reproduces **Figure 8**: successor entropy vs successor sequence
//! length, for workloads filtered through intervening LRU caches of
//! capacity 1, 10, 50, 100, 500 and 1000, on the `write` and `users`
//! workloads.
//!
//! Expected shape (paper): entropy rises with sequence length at every
//! filter size; a tiny filter (10) makes the stream *less* predictable
//! than raw, while larger filters (50–1000) make the miss stream *more*
//! predictable — filtered misses reflect orderly first requests of new
//! working sets.

use fgcache_bench::{emit, standard_trace};
use fgcache_sim::entropy_exp::{entropy_table, filtered_entropy_sweep};
use fgcache_trace::synth::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter_capacities = [1usize, 10, 50, 100, 500, 1000];
    let ks: Vec<usize> = (1..=20).collect();
    for profile in [WorkloadProfile::Write, WorkloadProfile::Users] {
        let trace = standard_trace(profile);
        let series = filtered_entropy_sweep(&trace, &filter_capacities, &ks)?;
        let table = entropy_table(
            &format!("Figure 8 ({profile}): successor entropy of filtered miss streams"),
            &series,
        );
        emit(&format!("fig8_{profile}"), &table)?;
    }
    Ok(())
}

//! Throughput of the three trace IO formats and the workload generator.

use fgcache_bench::harness;
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::{io, Trace};
use std::hint::black_box;

const EVENTS: usize = 20_000;

fn workload() -> Trace {
    SynthConfig::profile(WorkloadProfile::Workstation)
        .events(EVENTS)
        .seed(1)
        .build()
        .expect("profile is valid")
        .generate()
}

fn main() {
    let trace = workload();
    let mut text = Vec::new();
    io::write_text(&trace, &mut text).expect("in-memory write");
    let mut json = Vec::new();
    io::write_json(&trace, &mut json).expect("in-memory write");
    let mut bin = Vec::new();
    io::write_binary(&trace, &mut bin).expect("in-memory write");

    harness::run("trace_io/write_text", Some(EVENTS as u64), || {
        let mut buf = Vec::with_capacity(text.len());
        io::write_text(black_box(&trace), &mut buf).expect("in-memory write");
        buf.len()
    });
    harness::run("trace_io/read_text", Some(EVENTS as u64), || {
        io::read_text(black_box(text.as_slice()))
            .expect("round trip")
            .len()
    });
    harness::run("trace_io/write_binary", Some(EVENTS as u64), || {
        let mut buf = Vec::with_capacity(bin.len());
        io::write_binary(black_box(&trace), &mut buf).expect("in-memory write");
        buf.len()
    });
    harness::run("trace_io/read_binary", Some(EVENTS as u64), || {
        io::read_binary(black_box(bin.as_slice()))
            .expect("round trip")
            .len()
    });
    harness::run("trace_io/read_json", Some(EVENTS as u64), || {
        io::read_json(black_box(json.as_slice()))
            .expect("round trip")
            .len()
    });

    for profile in WorkloadProfile::ALL {
        let generator = SynthConfig::profile(profile)
            .events(EVENTS)
            .seed(9)
            .build()
            .expect("profile is valid");
        harness::run(
            &format!("workload_generation/{}", profile.name()),
            Some(EVENTS as u64),
            || generator.generate().len(),
        );
    }
}

//! Future-work extensions: **group-based data placement** and **mobile
//! file hoarding** (paper §6).
//!
//! The paper's conclusions name two follow-on applications of dynamic
//! grouping beyond caching:
//!
//! * *"the use of grouping in optimizing data placement for different
//!   storage scenarios"* — [`layout`] places files on a linear storage
//!   medium and [`seek`] replays a trace against a layout, measuring head
//!   movement. Baselines: random placement and the frequency-based
//!   placements of Staelin & García-Molina / Wong (organ-pipe), versus
//!   placement by the covering groups of the relationship graph.
//! * *"the effectiveness of our model for improving mobile file hoarding
//!   applications"* (the Seer line of work) — [`hoard`] builds a bounded
//!   hoard set from history and measures how much of a future disconnected
//!   period it satisfies, comparing frequency-ranked hoards against
//!   group-closure hoards.
//!
//! # Examples
//!
//! ```
//! use fgcache_placement::{layout::Layout, seek};
//! use fgcache_trace::Trace;
//!
//! let history = Trace::from_files([1, 2, 3].repeat(50));
//! let grouped = Layout::grouped(&history, 3);
//! let random = Layout::hashed(&history);
//! // Files accessed together are adjacent, so the head barely moves.
//! assert!(seek::mean_seek(&grouped, &history) <= seek::mean_seek(&random, &history));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hoard;
pub mod layout;
pub mod seek;

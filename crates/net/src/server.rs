//! A real TCP group-fetch server wrapping a [`ShardedAggregatingCache`].
//!
//! [`BoundServer::bind`] takes an address (use port 0 for an ephemeral
//! loopback port) and a shared cache; [`BoundServer::run`] then accepts
//! connections and serves the [wire protocol](crate::wire) until asked to
//! stop. Each connection gets its own scoped thread
//! (`std::thread::scope`), so handler lifetimes are tied to the accept
//! loop and no connection can outlive the server.
//!
//! # Exactly-once fetches
//!
//! All connections share one [`ReplyCache`] behind a mutex, and a fetch
//! executes *while holding it*: a retry racing its original request —
//! possibly on a different pooled connection — either finds the
//! remembered reply or blocks until the original finishes, never
//! double-executing. This serialises fetch execution, which is the honest
//! trade for a correctness-first reproduction (and costs nothing on the
//! single-core hosts the benchmarks run on; the cache's own shard locks
//! would serialise most of the work anyway).
//!
//! # Shutdown
//!
//! Stopping is cooperative: a client sends `Shutdown` (or the owner calls
//! [`ServerHandle::stop`]), which sets a shared flag and pokes the
//! listener with a throwaway connection so the blocking `accept` wakes
//! up. Handler threads poll the flag between read attempts (connections
//! use a short read timeout), so the whole scope drains within one poll
//! interval.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use fgcache_core::ShardedAggregatingCache;

use crate::dedup::{ReplyCache, DEFAULT_REPLY_CACHE_CAPACITY};
use crate::transport::{FileReply, GroupReply};
use crate::wire::{write_frame, Message, WireStats, MAX_FRAME_LEN};

/// How often an idle connection re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A TCP group-fetch server bound to an address but not yet running.
#[derive(Debug)]
pub struct BoundServer {
    listener: TcpListener,
    cache: Arc<ShardedAggregatingCache>,
    shutdown: Arc<AtomicBool>,
    dedup_capacity: usize,
}

impl BoundServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port), serving fetches from `cache`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cache: Arc<ShardedAggregatingCache>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(BoundServer {
            listener,
            cache,
            shutdown: Arc::new(AtomicBool::new(false)),
            dedup_capacity: DEFAULT_REPLY_CACHE_CAPACITY,
        })
    }

    /// Overrides the reply-cache window (see
    /// [`ReplyCache`]); 0 disables retry deduplication.
    #[must_use]
    pub fn with_dedup_capacity(mut self, capacity: usize) -> Self {
        self.dedup_capacity = capacity;
        self
    }

    /// The bound address, as a `host:port` string clients can connect to.
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string())
    }

    /// The shared shutdown flag (for embedding the server under an
    /// external signal handler).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop on the calling thread until shut down. Each
    /// accepted connection is served on its own scoped thread.
    pub fn run(self) {
        let BoundServer {
            listener,
            cache,
            shutdown,
            dedup_capacity,
        } = self;
        let wake_addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        let dedup = Mutex::new(ReplyCache::new(dedup_capacity));
        let cache = &*cache;
        let shutdown = &*shutdown;
        let dedup = &dedup;
        thread::scope(|scope| {
            loop {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if shutdown.load(Ordering::Acquire) {
                            break; // the wake-up poke, not a real client
                        }
                        let wake_addr = wake_addr.clone();
                        scope.spawn(move || {
                            handle_connection(stream, cache, dedup, shutdown, &wake_addr);
                        });
                    }
                    Err(_) if shutdown.load(Ordering::Acquire) => break,
                    Err(_) => continue, // transient accept failure
                }
            }
        });
    }

    /// Runs the server on a background thread, returning a handle that
    /// can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::clone(&self.shutdown);
        let join = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            join,
        }
    }
}

/// A running server on a background thread (from [`BoundServer::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    shutdown: Arc<AtomicBool>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The server's `host:port` address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the server and waits for every connection handler to drain.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept; an immediately-dropped connection is
        // indistinguishable from a client that connected and went away.
        drop(TcpStream::connect(&self.addr));
        self.join.join().expect("server thread panicked");
    }
}

/// Outcome of one patient read attempt.
enum Inbound {
    /// A complete frame arrived.
    Frame(Message),
    /// The peer closed, the frame was malformed, or shutdown was
    /// requested: stop serving this connection.
    Hangup,
}

/// Fills `buf` completely, resuming across read-timeout polls (the
/// connection's short read timeout doubles as the shutdown-flag poll).
/// Partial progress is kept in `buf`, so a frame split across polls is
/// reassembled rather than desynced. Returns `false` to hang up: EOF,
/// a hard I/O error, or shutdown requested while no bytes of `buf` have
/// arrived yet (mid-buffer, one more poll is allowed to drain the frame).
fn fill_patient(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> bool {
    let mut filled = 0;
    let mut polls_after_shutdown = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false, // peer closed
            Ok(n) => filled += n,
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    if filled == 0 || polls_after_shutdown > 0 {
                        return false;
                    }
                    polls_after_shutdown += 1;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Reads one frame, tolerating read-timeout polls while idle and between
/// partial reads. Returns [`Inbound::Hangup`] on EOF, on shutdown, and on
/// malformed input (a desynced stream cannot be re-framed, so hanging up
/// is the only safe reaction).
fn read_frame_patient(stream: &mut TcpStream, shutdown: &AtomicBool) -> Inbound {
    let mut header = [0u8; 4];
    if !fill_patient(stream, &mut header, shutdown) {
        return Inbound::Hangup;
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Inbound::Hangup;
    }
    let mut payload = vec![0u8; len as usize];
    if !fill_patient(stream, &mut payload, shutdown) {
        return Inbound::Hangup;
    }
    match Message::decode(&payload) {
        Ok(message) => Inbound::Frame(message),
        Err(_) => Inbound::Hangup,
    }
}

fn handle_connection(
    mut stream: TcpStream,
    cache: &ShardedAggregatingCache,
    dedup: &Mutex<ReplyCache>,
    shutdown: &AtomicBool,
    wake_addr: &str,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        let message = match read_frame_patient(&mut stream, shutdown) {
            Inbound::Frame(m) => m,
            Inbound::Hangup => return,
        };
        let reply = match message {
            Message::Fetch { request_id, files } => {
                let reply = serve_fetch(cache, lock_dedup(dedup), request_id, files);
                Message::reply_for(&reply)
            }
            Message::StatsRequest { request_id } => Message::StatsReply {
                request_id,
                stats: snapshot_stats(cache),
            },
            Message::Shutdown { request_id } => {
                let ack = Message::ShutdownAck { request_id };
                let _ = write_frame(&mut stream, &ack);
                let _ = stream.flush();
                shutdown.store(true, Ordering::Release);
                // Wake the accept loop so the scope can finish.
                drop(TcpStream::connect(wake_addr));
                return;
            }
            other => Message::Error {
                request_id: other.request_id(),
                message: format!("unexpected client message: {other:?}"),
            },
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn lock_dedup(dedup: &Mutex<ReplyCache>) -> MutexGuard<'_, ReplyCache> {
    dedup
        .lock()
        .expect("a connection handler panicked while holding the reply cache")
}

/// Serves one fetch with the reply cache held across execution, making it
/// exactly-once per request id (see the [module docs](self)).
fn serve_fetch(
    cache: &ShardedAggregatingCache,
    mut dedup: MutexGuard<'_, ReplyCache>,
    request_id: u64,
    files: Vec<fgcache_types::FileId>,
) -> GroupReply {
    if let Some(remembered) = dedup.get(request_id) {
        return remembered.clone();
    }
    let files: Vec<FileReply> = files
        .into_iter()
        .map(|file| FileReply {
            file,
            outcome: cache.handle_access(file),
        })
        .collect();
    let reply = GroupReply { request_id, files };
    dedup.insert(reply.clone());
    reply
}

fn snapshot_stats(cache: &ShardedAggregatingCache) -> WireStats {
    let stats = cache.stats();
    let group = cache.group_stats();
    WireStats {
        accesses: stats.accesses,
        hits: stats.hits,
        misses: stats.misses,
        speculative_inserts: stats.speculative_inserts,
        speculative_hits: stats.speculative_hits,
        evictions: stats.evictions,
        demand_fetches: group.demand_fetches,
        files_transferred: group.files_transferred,
        members_already_resident: group.members_already_resident,
    }
}

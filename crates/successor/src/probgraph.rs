//! Griffioen–Appleton probability graphs (USENIX Summer '94).
//!
//! The related-work baseline the paper contrasts with (§5): within a
//! *lookahead window* of `w` accesses, every file seen after `A` counts as
//! related to `A`; prefetch candidates are successors whose observed
//! probability exceeds a *minimum chance* threshold. Unlike the
//! aggregating cache this scheme (a) is frequency-based and (b) needs the
//! window parameter; the paper's point is that immediate-successor
//! recency gets comparable or better behaviour with less machinery.

use std::collections::VecDeque;

use fgcache_types::hash::FastMap;
use fgcache_types::{FileId, ValidationError};

use crate::group::Group;

/// A lookahead-window probability graph predictor.
///
/// ```
/// use fgcache_successor::ProbabilityGraph;
/// use fgcache_types::FileId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pg = ProbabilityGraph::new(2, 0.3)?;
/// for id in [1u64, 2, 3, 1, 2, 3] {
///     pg.record(FileId(id));
/// }
/// // Within a window of 2, file 1 is followed by 2 and 3.
/// let preds = pg.predict(FileId(1));
/// assert!(preds.contains(&FileId(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProbabilityGraph {
    window: usize,
    min_chance: f64,
    // edge counts: predecessor → (successor → count within window)
    edges: FastMap<FileId, FastMap<FileId, u64>>,
    // total windowed observations per predecessor (edge normaliser)
    totals: FastMap<FileId, u64>,
    recent: VecDeque<FileId>,
}

impl ProbabilityGraph {
    /// Creates a probability graph with the given lookahead `window` and
    /// `min_chance` prefetch threshold.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `window` is zero or `min_chance`
    /// is outside `[0, 1]`.
    pub fn new(window: usize, min_chance: f64) -> Result<Self, ValidationError> {
        if window == 0 {
            return Err(ValidationError::new("window", "must be at least 1"));
        }
        if !(0.0..=1.0).contains(&min_chance) || min_chance.is_nan() {
            return Err(ValidationError::new("min_chance", "must lie in [0, 1]"));
        }
        Ok(ProbabilityGraph {
            window,
            min_chance,
            edges: FastMap::default(),
            totals: FastMap::default(),
            recent: VecDeque::with_capacity(window),
        })
    }

    /// The lookahead window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records one access: `file` is charged as a windowed successor of
    /// each of the previous `window` accesses.
    pub fn record(&mut self, file: FileId) {
        for &pred in &self.recent {
            if pred == file {
                continue;
            }
            *self.edges.entry(pred).or_default().entry(file).or_insert(0) += 1;
            *self.totals.entry(pred).or_insert(0) += 1;
        }
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(file);
    }

    /// Number of files with at least one windowed successor.
    pub fn tracked_files(&self) -> usize {
        self.edges.len()
    }

    /// Total number of windowed edges tracked — the baseline's metadata
    /// footprint, which is unbounded per file (contrast with the
    /// aggregating cache's fixed-capacity successor lists).
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|m| m.len()).sum()
    }

    /// The observed probability that `to` appears within the window after
    /// `from`.
    pub fn probability(&self, from: FileId, to: FileId) -> f64 {
        let total = self.totals.get(&from).copied().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        let count = self
            .edges
            .get(&from)
            .and_then(|m| m.get(&to))
            .copied()
            .unwrap_or(0);
        count as f64 / total as f64
    }

    /// Files whose windowed-successor probability after `file` meets the
    /// minimum-chance threshold, strongest first.
    pub fn predict(&self, file: FileId) -> Vec<FileId> {
        let Some(total) = self.totals.get(&file).copied().filter(|&t| t > 0) else {
            return Vec::new();
        };
        let mut out: Vec<(FileId, u64)> = self
            .edges
            .get(&file)
            .map(|m| {
                m.iter()
                    .filter(|(_, &c)| c as f64 / total as f64 >= self.min_chance)
                    .map(|(&f, &c)| (f, c))
                    .collect()
            })
            .unwrap_or_default();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.into_iter().map(|(f, _)| f).collect()
    }

    /// A retrieval group for `file`: the file plus up to `g − 1` of its
    /// strongest above-threshold windowed successors. This is how the
    /// baseline plugs into the same group-fetching machinery as the
    /// aggregating cache.
    pub fn group_for(&self, file: FileId, g: usize) -> Group {
        let members = self.predict(file).into_iter().take(g.saturating_sub(1));
        Group::new(file, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(ProbabilityGraph::new(0, 0.1).is_err());
        assert!(ProbabilityGraph::new(3, -0.1).is_err());
        assert!(ProbabilityGraph::new(3, 1.1).is_err());
        assert!(ProbabilityGraph::new(3, f64::NAN).is_err());
        assert!(ProbabilityGraph::new(3, 0.0).is_ok());
    }

    #[test]
    fn window_counts_indirect_successors() {
        let mut pg = ProbabilityGraph::new(3, 0.0).unwrap();
        for id in [1u64, 2, 3, 4] {
            pg.record(FileId(id));
        }
        // 4 is within window 3 of 1.
        assert!(pg.probability(FileId(1), FileId(4)) > 0.0);
        // ...but 1 is not a successor of 4.
        assert_eq!(pg.probability(FileId(4), FileId(1)), 0.0);
    }

    #[test]
    fn window_one_is_immediate_successors_only() {
        let mut pg = ProbabilityGraph::new(1, 0.0).unwrap();
        for id in [1u64, 2, 3] {
            pg.record(FileId(id));
        }
        assert!(pg.probability(FileId(1), FileId(2)) > 0.0);
        assert_eq!(pg.probability(FileId(1), FileId(3)), 0.0);
    }

    #[test]
    fn threshold_filters_predictions() {
        let mut pg = ProbabilityGraph::new(1, 0.6).unwrap();
        // 1→2 three times, 1→3 once: P(2)=0.75, P(3)=0.25.
        for id in [1u64, 2, 1, 2, 1, 2, 1, 3] {
            pg.record(FileId(id));
        }
        let preds = pg.predict(FileId(1));
        assert_eq!(preds, vec![FileId(2)]);
    }

    #[test]
    fn probabilities_normalised() {
        let mut pg = ProbabilityGraph::new(1, 0.0).unwrap();
        for id in [1u64, 2, 1, 3] {
            pg.record(FileId(id));
        }
        let p2 = pg.probability(FileId(1), FileId(2));
        let p3 = pg.probability(FileId(1), FileId(3));
        assert!((p2 + p3 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn self_edges_ignored() {
        let mut pg = ProbabilityGraph::new(2, 0.0).unwrap();
        for id in [1u64, 1, 1] {
            pg.record(FileId(id));
        }
        assert_eq!(pg.probability(FileId(1), FileId(1)), 0.0);
        assert!(pg.predict(FileId(1)).is_empty());
    }

    #[test]
    fn group_for_contains_request_first() {
        let mut pg = ProbabilityGraph::new(2, 0.0).unwrap();
        for id in [1u64, 2, 3, 1, 2, 3] {
            pg.record(FileId(id));
        }
        let g = pg.group_for(FileId(1), 3);
        assert_eq!(g.requested(), FileId(1));
        assert!(g.len() <= 3);
        assert!(g.len() >= 2);
    }

    #[test]
    fn unknown_file_predicts_nothing() {
        let pg = ProbabilityGraph::new(2, 0.0).unwrap();
        assert!(pg.predict(FileId(5)).is_empty());
        assert_eq!(pg.group_for(FileId(5), 4).len(), 1);
    }
}

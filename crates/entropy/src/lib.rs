//! Successor entropy — the paper's predictability metric (§4.5).
//!
//! The *successor entropy* `H_S` of an access sequence is the
//! access-weighted conditional entropy of each file's immediate-successor
//! distribution (Equation 2):
//!
//! ```text
//! H_S = Σ_i  Pr(f_i) · H(f_i)          over files f_i appearing > once
//! H(f_i) = − Σ_j Pr(s_ij | f_i) · log2 Pr(s_ij | f_i)
//! ```
//!
//! where `Pr(f_i)` is the fraction of *all* access events that referred to
//! `f_i` and `Pr(s_ij | f_i)` the fraction of accesses following `f_i`
//! that were of successor symbol `s_ij`. Files occurring only once are
//! excluded so that a non-repeating workload cannot masquerade as
//! predictable; their occurrences still inflate their predecessors'
//! conditional entropy. Lower values mean a more predictable workload.
//!
//! A *successor symbol* is, in general, the **sequence of the next `k`
//! accesses** (Figure 6). The paper's finding is that `k = 1` — single
//! file successors — is consistently the most predictable choice
//! (Figure 7), and that this holds under intervening-cache filtering
//! (Figure 8), which [`filtered_entropy`] reproduces.
//!
//! # Examples
//!
//! ```
//! use fgcache_entropy::successor_entropy;
//! use fgcache_types::FileId;
//!
//! // A perfectly repetitive sequence is perfectly predictable.
//! let seq: Vec<FileId> = [1u64, 2, 3].repeat(100).into_iter().map(FileId).collect();
//! assert_eq!(successor_entropy(&seq), 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{HashMap, VecDeque};

use fgcache_cache::{filter::miss_stream, Cache, LruCache};
use fgcache_trace::Trace;
use fgcache_types::{FileId, ValidationError};

/// Successor entropy with single-file successor symbols (`k = 1`), in
/// bits. Returns 0 for sequences shorter than two accesses.
pub fn successor_entropy(files: &[FileId]) -> f64 {
    successor_sequence_entropy(files, 1).expect("k = 1 is always valid")
}

/// Successor entropy with successor symbols of `k` consecutive accesses,
/// in bits (Equation 2 generalised per Figure 6).
///
/// # Errors
///
/// Returns a [`ValidationError`] if `k` is zero.
pub fn successor_sequence_entropy(files: &[FileId], k: usize) -> Result<f64, ValidationError> {
    Ok(analyze(files, k)?.entropy)
}

/// Per-file detail of a successor-entropy computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FileEntropy {
    /// The file acting as the prediction context.
    pub file: FileId,
    /// `Pr(f_i)` — the file's share of all access events.
    pub weight: f64,
    /// `H(f_i)` — conditional entropy of its successor symbols, in bits.
    pub conditional_entropy: f64,
    /// Number of distinct successor symbols observed after this file.
    pub distinct_successors: usize,
    /// Number of transitions (successor observations) from this file.
    pub transitions: u64,
}

/// Full result of a successor-entropy analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyAnalysis {
    /// The successor symbol length `k`.
    pub symbol_length: usize,
    /// The access-weighted successor entropy `H_S`, in bits.
    pub entropy: f64,
    /// Number of events in the analysed sequence.
    pub events: usize,
    /// Files included in the average (those appearing more than once).
    pub repeating_files: usize,
    /// Files excluded (single occurrence).
    pub singleton_files: usize,
    /// Per-file breakdown for the included files, sorted by descending
    /// contribution (`weight × conditional_entropy`).
    pub per_file: Vec<FileEntropy>,
}

/// Computes the full successor-entropy analysis for symbol length `k`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `k` is zero.
pub fn analyze(files: &[FileId], k: usize) -> Result<EntropyAnalysis, ValidationError> {
    if k == 0 {
        return Err(ValidationError::new(
            "k",
            "successor symbol length must be at least 1",
        ));
    }
    let n = files.len();
    let mut occurrences: HashMap<FileId, u64> = HashMap::new();
    for &f in files {
        *occurrences.entry(f).or_insert(0) += 1;
    }
    // successor-symbol counts per predecessor
    let mut successors: HashMap<FileId, HashMap<&[FileId], u64>> = HashMap::new();
    if n > k {
        for i in 0..(n - k) {
            let pred = files[i];
            let symbol = &files[i + 1..=i + k];
            *successors
                .entry(pred)
                .or_default()
                .entry(symbol)
                .or_insert(0) += 1;
        }
    }
    Ok(finish_analysis(k, n, &occurrences, &successors))
}

/// Scores accumulated occurrence and successor-symbol counts into an
/// [`EntropyAnalysis`] (Equation 2). Shared by the materialized
/// [`analyze`] and the streaming [`EntropyAccumulator`]; generic over the
/// symbol key so borrowed (`&[FileId]`) and owned (`Box<[FileId]>`) count
/// maps score identically.
fn finish_analysis<S>(
    k: usize,
    n: usize,
    occurrences: &HashMap<FileId, u64>,
    successors: &HashMap<FileId, HashMap<S, u64>>,
) -> EntropyAnalysis {
    let mut per_file = Vec::new();
    let mut total = 0.0;
    let singleton_files = occurrences.values().filter(|&&c| c == 1).count();
    let repeating_files = occurrences.len() - singleton_files;
    // 0/0 guard: with no events every `count / n` weight below would be
    // NaN, and a NaN weight would poison the total *and* panic the
    // contribution sort (`partial_cmp` on NaN). No events means nothing
    // repeats, so the entropy is zero by definition.
    if n == 0 {
        return EntropyAnalysis {
            symbol_length: k,
            entropy: 0.0,
            events: 0,
            repeating_files,
            singleton_files,
            per_file,
        };
    }
    for (&file, &count) in occurrences {
        if count <= 1 {
            continue;
        }
        let Some(symbols) = successors.get(&file) else {
            continue;
        };
        let transitions: u64 = symbols.values().sum();
        if transitions == 0 {
            continue;
        }
        let mut h = 0.0;
        for &c in symbols.values() {
            let p = c as f64 / transitions as f64;
            h -= p * p.log2();
        }
        let weight = count as f64 / n as f64;
        total += weight * h;
        per_file.push(FileEntropy {
            file,
            weight,
            conditional_entropy: h,
            distinct_successors: symbols.len(),
            transitions,
        });
    }
    per_file.sort_by(|a, b| {
        let ca = a.weight * a.conditional_entropy;
        let cb = b.weight * b.conditional_entropy;
        cb.partial_cmp(&ca)
            .expect("entropy contributions are finite")
            .then(a.file.cmp(&b.file))
    });
    EntropyAnalysis {
        symbol_length: k,
        entropy: total,
        events: n,
        repeating_files,
        singleton_files,
        per_file,
    }
}

/// Successor-symbol counts per predecessor file, keyed by owned symbol.
type SymbolCounts = HashMap<FileId, HashMap<Box<[FileId]>, u64>>;

/// Incremental successor-entropy computation over a file stream.
///
/// The streaming twin of [`analyze`]/[`entropy_profile`] for traces too
/// large to materialize: feed files one at a time with
/// [`push`](EntropyAccumulator::push) and score at the end with
/// [`analyses`](EntropyAccumulator::analyses) or
/// [`profile`](EntropyAccumulator::profile). All requested symbol lengths
/// are tracked in a single pass over a rolling window of the last
/// `max(ks) + 1` files; memory is bounded by the number of distinct
/// (predecessor, symbol) pairs, never by the stream length.
///
/// The resulting analyses match [`analyze`] on the materialized sequence
/// except for float summation order (the per-symbol counts live in hash
/// maps keyed by owned rather than borrowed slices, so iteration order —
/// and thus the order of the `Σ p·log2 p` accumulation — may differ by a
/// few ulps).
///
/// ```
/// use fgcache_entropy::{analyze, EntropyAccumulator};
/// use fgcache_types::FileId;
///
/// let files: Vec<FileId> = [1u64, 2, 1, 3].repeat(50).into_iter().map(FileId).collect();
/// let mut acc = EntropyAccumulator::new(&[1, 2]).expect("valid ks");
/// for &f in &files {
///     acc.push(f);
/// }
/// let streamed = acc.profile();
/// let direct = analyze(&files, 1).expect("valid k").entropy;
/// assert!((streamed[0].1 - direct).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct EntropyAccumulator {
    ks: Vec<usize>,
    max_k: usize,
    occurrences: HashMap<FileId, u64>,
    /// Successor-symbol counts per predecessor, parallel to `ks`.
    successors: Vec<SymbolCounts>,
    window: VecDeque<FileId>,
    scratch: Vec<FileId>,
    events: usize,
}

impl EntropyAccumulator {
    /// Creates an accumulator tracking every symbol length in `ks`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if any `k` is zero.
    pub fn new(ks: &[usize]) -> Result<Self, ValidationError> {
        if ks.contains(&0) {
            return Err(ValidationError::new(
                "k",
                "successor symbol length must be at least 1",
            ));
        }
        let max_k = ks.iter().copied().max().unwrap_or(0);
        Ok(EntropyAccumulator {
            ks: ks.to_vec(),
            max_k,
            occurrences: HashMap::new(),
            successors: vec![HashMap::new(); ks.len()],
            window: VecDeque::with_capacity(max_k + 1),
            scratch: Vec::with_capacity(max_k),
            events: 0,
        })
    }

    /// Number of files pushed so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Accumulates one file access.
    pub fn push(&mut self, file: FileId) {
        self.events += 1;
        *self.occurrences.entry(file).or_insert(0) += 1;
        self.window.push_back(file);
        if self.window.len() > self.max_k + 1 {
            self.window.pop_front();
        }
        let len = self.window.len();
        for (i, &k) in self.ks.iter().enumerate() {
            // The arriving file completes one length-k symbol: the k files
            // ending at it, predicted by the file k positions back.
            if len < k + 1 {
                continue;
            }
            let pred = self.window[len - 1 - k];
            self.scratch.clear();
            self.scratch.extend(self.window.iter().skip(len - k));
            let symbols = self.successors[i].entry(pred).or_default();
            // Look up by slice first so repeat symbols never allocate.
            if let Some(c) = symbols.get_mut(self.scratch.as_slice()) {
                *c += 1;
            } else {
                symbols.insert(self.scratch.clone().into_boxed_slice(), 1);
            }
        }
    }

    /// Scores the accumulated counts: one [`EntropyAnalysis`] per
    /// requested symbol length, in the order given to
    /// [`new`](EntropyAccumulator::new).
    pub fn analyses(&self) -> Vec<EntropyAnalysis> {
        self.ks
            .iter()
            .zip(&self.successors)
            .map(|(&k, succ)| finish_analysis(k, self.events, &self.occurrences, succ))
            .collect()
    }

    /// The `(k, entropy)` profile — the streaming counterpart of
    /// [`entropy_profile`].
    pub fn profile(&self) -> Vec<(usize, f64)> {
        self.analyses()
            .into_iter()
            .map(|a| (a.symbol_length, a.entropy))
            .collect()
    }
}

/// Successor entropy of a file sequence at each symbol length in `ks` —
/// the data series of Figure 7.
///
/// # Errors
///
/// Returns a [`ValidationError`] if any `k` is zero.
pub fn entropy_profile(
    files: &[FileId],
    ks: &[usize],
) -> Result<Vec<(usize, f64)>, ValidationError> {
    ks.iter()
        .map(|&k| Ok((k, successor_sequence_entropy(files, k)?)))
        .collect()
}

/// Successor entropy of the **miss stream** of `trace` after filtering
/// through an intervening LRU cache of `filter_capacity` files, at symbol
/// length `k` — one point of Figure 8.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `k` is zero.
///
/// # Panics
///
/// Panics if `filter_capacity` is zero (the LRU cache validates it).
pub fn filtered_entropy(
    trace: &Trace,
    filter_capacity: usize,
    k: usize,
) -> Result<f64, ValidationError> {
    let mut cache = LruCache::new(filter_capacity);
    let stream = miss_stream(&mut cache, trace);
    successor_sequence_entropy(&stream.file_sequence(), k)
}

/// The full Figure 8 series for one filter capacity: entropy at every
/// symbol length in `ks`, computed on a single filtered pass.
///
/// # Errors
///
/// Returns a [`ValidationError`] if any `k` is zero.
///
/// # Panics
///
/// Panics if `filter_capacity` is zero (the LRU cache validates it).
pub fn filtered_entropy_profile(
    trace: &Trace,
    filter_capacity: usize,
    ks: &[usize],
) -> Result<Vec<(usize, f64)>, ValidationError> {
    let mut cache = LruCache::new(filter_capacity);
    let stream = miss_stream(&mut cache, trace);
    let files = stream.file_sequence();
    entropy_profile(&files, ks)
}

/// Convenience: hit rate of an LRU filter of `filter_capacity` over
/// `trace` — callers often want both the filtered entropy and how much
/// the filter absorbed.
///
/// # Panics
///
/// Panics if `filter_capacity` is zero (the LRU cache validates it).
pub fn filter_absorption(trace: &Trace, filter_capacity: usize) -> f64 {
    let mut cache = LruCache::new(filter_capacity);
    let _ = miss_stream(&mut cache, trace);
    cache.stats().hit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u64]) -> Vec<FileId> {
        ids.iter().copied().map(FileId).collect()
    }

    #[test]
    fn k_zero_rejected() {
        assert!(successor_sequence_entropy(&seq(&[1, 2]), 0).is_err());
        assert!(analyze(&seq(&[1, 2]), 0).is_err());
        assert!(entropy_profile(&seq(&[1, 2]), &[1, 0]).is_err());
    }

    #[test]
    fn empty_and_tiny_sequences() {
        assert_eq!(successor_entropy(&[]), 0.0);
        assert_eq!(successor_entropy(&seq(&[1])), 0.0);
        assert_eq!(successor_entropy(&seq(&[1, 2])), 0.0);
    }

    #[test]
    fn empty_accumulator_scores_zero_not_nan() {
        // Regression: scoring with zero pushed events used to be able to
        // reach the `count / n` weight with n == 0; any path that does
        // produces NaN weights and a panicking contribution sort. An
        // untouched accumulator must score cleanly instead.
        let acc = EntropyAccumulator::new(&[1, 3]).unwrap();
        let analyses = acc.analyses();
        assert_eq!(analyses.len(), 2);
        for a in &analyses {
            assert_eq!(a.events, 0);
            assert_eq!(a.entropy, 0.0);
            assert!(a.entropy.is_finite());
            assert!(a.per_file.is_empty());
            assert_eq!(a.repeating_files + a.singleton_files, 0);
        }
        assert_eq!(acc.profile(), vec![(1, 0.0), (3, 0.0)]);
    }

    #[test]
    fn window_shorter_than_symbol_scores_zero() {
        // k = 4 with only 3 pushes: no symbol ever completes, so the
        // successor maps stay empty while occurrences do not — the
        // zero-transition guard (not the weight math) must carry this.
        let mut acc = EntropyAccumulator::new(&[4]).unwrap();
        for f in seq(&[1, 1, 1]) {
            acc.push(f);
        }
        let a = &acc.analyses()[0];
        assert_eq!(a.events, 3);
        assert_eq!(a.entropy, 0.0);
        assert!(a.per_file.is_empty());
        assert_eq!(a.repeating_files, 1); // file 1 repeats, predicts nothing
    }

    #[test]
    fn deterministic_sequence_has_zero_entropy() {
        let s: Vec<FileId> = seq(&[1, 2, 3, 4]).repeat(50);
        assert_eq!(successor_entropy(&s), 0.0);
        assert_eq!(successor_sequence_entropy(&s, 5).unwrap(), 0.0);
    }

    #[test]
    fn two_equally_likely_successors_give_one_bit_conditional() {
        // 1 is followed by 2 and by 3 equally often: H(1) = 1 bit.
        let s: Vec<FileId> = seq(&[1, 2, 1, 3]).repeat(100);
        let analysis = analyze(&s, 1).unwrap();
        let f1 = analysis
            .per_file
            .iter()
            .find(|e| e.file == FileId(1))
            .unwrap();
        assert!((f1.conditional_entropy - 1.0).abs() < 0.02);
        assert_eq!(f1.distinct_successors, 2);
        // Weighted: Pr(1) = 0.5, others deterministic → H_S ≈ 0.5.
        assert!(
            (analysis.entropy - 0.5).abs() < 0.05,
            "{}",
            analysis.entropy
        );
    }

    #[test]
    fn singletons_do_not_lower_entropy() {
        // Non-repeating workload: every file occurs once → excluded, so
        // the metric reports 0 with zero repeating files rather than
        // "perfectly predictable" via fake determinism.
        let s: Vec<FileId> = (0..1000u64).map(FileId).collect();
        let analysis = analyze(&s, 1).unwrap();
        assert_eq!(analysis.entropy, 0.0);
        assert_eq!(analysis.repeating_files, 0);
        assert_eq!(analysis.singleton_files, 1000);
        assert!(analysis.per_file.is_empty());
    }

    #[test]
    fn singletons_inflate_predecessor_entropy() {
        // 1 is followed by a fresh file every time: H(1) = log2(#runs).
        let mut ids = Vec::new();
        for i in 0..8u64 {
            ids.push(1);
            ids.push(100 + i);
        }
        let analysis = analyze(&seq(&ids), 1).unwrap();
        let f1 = analysis
            .per_file
            .iter()
            .find(|e| e.file == FileId(1))
            .unwrap();
        assert!((f1.conditional_entropy - 3.0).abs() < 1e-9); // log2(8)
    }

    #[test]
    fn entropy_bounded_by_log_of_alphabet() {
        let s: Vec<FileId> = seq(&[1, 2, 3, 4, 5, 3, 2, 4, 1, 5, 2, 3]).repeat(20);
        let h = successor_entropy(&s);
        assert!(h >= 0.0);
        assert!(h <= (5f64).log2() + 1e-9);
    }

    #[test]
    fn longer_symbols_never_reduce_entropy_on_noisy_sequence() {
        let s: Vec<FileId> = seq(&[1, 2, 3, 1, 2, 4, 1, 3, 2, 1, 4, 3]).repeat(30);
        let profile = entropy_profile(&s, &[1, 2, 3, 4, 6]).unwrap();
        for pair in profile.windows(2) {
            // Finite-sample edge effects (one fewer window per extra k)
            // permit microscopic decreases; the trend must still hold.
            assert!(
                pair[1].1 >= pair[0].1 - 0.01,
                "entropy decreased from k={} ({}) to k={} ({})",
                pair[0].0,
                pair[0].1,
                pair[1].0,
                pair[1].1
            );
        }
    }

    #[test]
    fn filtered_entropy_runs_and_is_finite() {
        let trace = Trace::from_files((0..500u64).map(|i| i % 23));
        let h = filtered_entropy(&trace, 5, 1).unwrap();
        assert!(h.is_finite() && h >= 0.0);
        let profile = filtered_entropy_profile(&trace, 5, &[1, 2, 3]).unwrap();
        assert_eq!(profile.len(), 3);
    }

    #[test]
    fn huge_filter_absorbs_everything_after_cold_start() {
        let trace = Trace::from_files([1, 2, 3].repeat(100));
        let absorption = filter_absorption(&trace, 1000);
        assert!(absorption > 0.95);
        // Miss stream is just the 3 cold misses → too short to repeat.
        let h = filtered_entropy(&trace, 1000, 1).unwrap();
        assert_eq!(h, 0.0);
    }

    #[test]
    fn analysis_weights_sum_to_repeating_share() {
        let s: Vec<FileId> = seq(&[1, 1, 2, 3, 2, 9]);
        let analysis = analyze(&s, 1).unwrap();
        let weight_sum: f64 = analysis.per_file.iter().map(|e| e.weight).sum();
        // 1 and 2 repeat (weights 2/6 + 2/6); 3 and 9 are singletons.
        assert!(weight_sum <= 1.0);
        assert!((weight_sum - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_rejects_zero_k() {
        assert!(EntropyAccumulator::new(&[1, 0, 2]).is_err());
    }

    #[test]
    fn empty_accumulator_profiles_to_zero() {
        let acc = EntropyAccumulator::new(&[1, 2, 3]).unwrap();
        assert_eq!(acc.events(), 0);
        for (_, h) in acc.profile() {
            assert_eq!(h, 0.0);
        }
    }

    #[test]
    fn accumulator_matches_analyze_on_noisy_sequence() {
        let s: Vec<FileId> = seq(&[1, 2, 3, 1, 2, 4, 1, 3, 2, 1, 4, 3, 9, 9, 2]).repeat(30);
        let ks = [1usize, 2, 3, 4, 6];
        let mut acc = EntropyAccumulator::new(&ks).unwrap();
        for &f in &s {
            acc.push(f);
        }
        assert_eq!(acc.events(), s.len());
        let analyses = acc.analyses();
        for (i, &k) in ks.iter().enumerate() {
            let direct = analyze(&s, k).unwrap();
            let streamed = &analyses[i];
            assert_eq!(streamed.symbol_length, direct.symbol_length);
            assert_eq!(streamed.events, direct.events);
            assert_eq!(streamed.repeating_files, direct.repeating_files);
            assert_eq!(streamed.singleton_files, direct.singleton_files);
            assert!(
                (streamed.entropy - direct.entropy).abs() < 1e-9,
                "k={k}: streamed {} vs direct {}",
                streamed.entropy,
                direct.entropy
            );
            assert_eq!(streamed.per_file.len(), direct.per_file.len());
            for (se, de) in streamed.per_file.iter().zip(&direct.per_file) {
                assert_eq!(se.file, de.file);
                assert_eq!(se.distinct_successors, de.distinct_successors);
                assert_eq!(se.transitions, de.transitions);
                assert!((se.conditional_entropy - de.conditional_entropy).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn accumulator_matches_entropy_profile_on_short_sequences() {
        // Sequences shorter than k exercise the "no complete symbol yet"
        // paths on both sides.
        for len in 0..6usize {
            let s: Vec<FileId> = seq(&[7, 8, 7, 9, 7][..len.min(5)]);
            let ks = [1usize, 2, 3];
            let mut acc = EntropyAccumulator::new(&ks).unwrap();
            for &f in &s {
                acc.push(f);
            }
            let direct = entropy_profile(&s, &ks).unwrap();
            for ((k1, h1), (k2, h2)) in acc.profile().into_iter().zip(direct) {
                assert_eq!(k1, k2);
                assert!((h1 - h2).abs() < 1e-9, "len={len} k={k1}: {h1} vs {h2}");
            }
        }
    }

    #[test]
    fn per_file_sorted_by_contribution() {
        let s: Vec<FileId> = seq(&[1, 2, 1, 3, 1, 4, 1, 2, 5, 6, 5, 6]).repeat(10);
        let analysis = analyze(&s, 1).unwrap();
        let contributions: Vec<f64> = analysis
            .per_file
            .iter()
            .map(|e| e.weight * e.conditional_entropy)
            .collect();
        for pair in contributions.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12);
        }
    }
}

//! The first-order I/O cost model shared by the analytic sweeps and the
//! fetch transports.
//!
//! The paper's motivation for grouping is latency: every remote fetch
//! pays a per-request round trip, so fetching `g` related files in one
//! request amortises it — at the price of transferring speculative files
//! that may never be used. This model quantifies that trade:
//!
//! ```text
//! total_time = demand_fetches × request_latency
//!            + files_transferred × transfer_time
//! ```
//!
//! which is the standard first-order model for fixed-size whole-file
//! transfers over a network with per-request overhead. With
//! `request_latency ≫ transfer_time` (the distributed-file-system regime
//! the paper targets), grouping wins decisively; as transfer cost grows,
//! large groups stop paying.
//!
//! The model lives in `fgcache-core` (rather than `fgcache-sim`, where
//! the sweeps that price runs with it live) so that `fgcache-net`'s
//! simulated transport can advance its virtual clock with *the same*
//! latency knobs the analytic tables use — one definition, no drift.
//! `fgcache_sim::cost` re-exports it under its historical path.

use fgcache_types::ValidationError;

/// Per-operation costs, in arbitrary time units (only ratios matter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost of one fetch request (round-trip latency + server
    /// request handling).
    pub request_latency: f64,
    /// Cost of transferring one file's data.
    pub transfer_time: f64,
}

impl CostModel {
    /// A distributed-file-system-like regime: a request round trip costs
    /// ten file transfers (small files, wide-area or congested links).
    pub fn remote() -> Self {
        CostModel {
            request_latency: 10.0,
            transfer_time: 1.0,
        }
    }

    /// A local-area regime: round trip worth two transfers.
    pub fn lan() -> Self {
        CostModel {
            request_latency: 2.0,
            transfer_time: 1.0,
        }
    }

    /// Validates the model (both costs finite and non-negative, not both
    /// zero).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (name, v) in [
            ("request_latency", self.request_latency),
            ("transfer_time", self.transfer_time),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ValidationError::new(name, "must be finite and >= 0"));
            }
        }
        if self.request_latency == 0.0 && self.transfer_time == 0.0 {
            return Err(ValidationError::new(
                "cost model",
                "at least one cost must be positive",
            ));
        }
        Ok(())
    }

    /// Total I/O time for a run that made `fetches` requests moving
    /// `files` files.
    pub fn total(&self, fetches: u64, files: u64) -> f64 {
        fetches as f64 * self.request_latency + files as f64 * self.transfer_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_validation() {
        assert!(CostModel::remote().validate().is_ok());
        assert!(CostModel::lan().validate().is_ok());
        assert!(CostModel {
            request_latency: -1.0,
            transfer_time: 1.0
        }
        .validate()
        .is_err());
        assert!(CostModel {
            request_latency: f64::NAN,
            transfer_time: 1.0
        }
        .validate()
        .is_err());
        assert!(CostModel {
            request_latency: 0.0,
            transfer_time: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn total_is_linear() {
        let m = CostModel {
            request_latency: 10.0,
            transfer_time: 2.0,
        };
        assert_eq!(m.total(3, 7), 44.0);
        assert_eq!(m.total(0, 0), 0.0);
    }
}

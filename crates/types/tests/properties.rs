//! Property-based tests for the shared identifier/event types.

use fgcache_types::{AccessEvent, AccessKind, AccessOutcome, ClientId, FileId, SeqNo};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Read),
        Just(AccessKind::Write),
        Just(AccessKind::Create),
        Just(AccessKind::Delete),
    ]
}

proptest! {
    #[test]
    fn file_id_conversions_roundtrip(raw in any::<u64>()) {
        let id = FileId::from(raw);
        prop_assert_eq!(u64::from(id), raw);
        prop_assert_eq!(id.as_u64(), raw);
        prop_assert_eq!(id, FileId(raw));
    }

    #[test]
    fn file_id_order_matches_u64(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(FileId(a).cmp(&FileId(b)), a.cmp(&b));
    }

    #[test]
    fn seq_no_next_is_monotone(raw in 0u64..u64::MAX) {
        let s = SeqNo(raw);
        prop_assert!(s.next() > s);
        prop_assert_eq!(s.next().as_u64(), raw + 1);
    }

    #[test]
    fn kind_code_roundtrips(kind in arb_kind()) {
        prop_assert_eq!(AccessKind::from_code(kind.code()).unwrap(), kind);
        // Exactly one of is_read / is_mutation holds.
        prop_assert_ne!(kind.is_read(), kind.is_mutation());
    }

    #[test]
    fn kind_rejects_non_codes(c in any::<char>()) {
        prop_assume!(!matches!(c, 'R' | 'W' | 'C' | 'D'));
        prop_assert!(AccessKind::from_code(c).is_err());
    }

    #[test]
    fn event_serde_roundtrips(
        seq in any::<u64>(),
        client in any::<u32>(),
        file in any::<u64>(),
        kind in arb_kind(),
    ) {
        let ev = AccessEvent::new(SeqNo(seq), ClientId(client), FileId(file), kind);
        let json = serde_json::to_string(&ev).unwrap();
        let back: AccessEvent = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn displays_are_never_empty(
        seq in any::<u64>(),
        client in any::<u32>(),
        file in any::<u64>(),
        kind in arb_kind(),
    ) {
        let ev = AccessEvent::new(SeqNo(seq), ClientId(client), FileId(file), kind);
        prop_assert!(!ev.to_string().is_empty());
        prop_assert!(!FileId(file).to_string().is_empty());
        prop_assert!(!ClientId(client).to_string().is_empty());
        prop_assert!(!SeqNo(seq).to_string().is_empty());
        prop_assert!(!kind.to_string().is_empty());
        prop_assert!(!AccessOutcome::Hit.to_string().is_empty());
    }

    #[test]
    fn transparent_serde_for_newtypes(raw in any::<u64>()) {
        // FileId/SeqNo serialize as bare numbers (format stability).
        prop_assert_eq!(
            serde_json::to_string(&FileId(raw)).unwrap(),
            raw.to_string()
        );
        prop_assert_eq!(
            serde_json::to_string(&SeqNo(raw)).unwrap(),
            raw.to_string()
        );
    }
}
